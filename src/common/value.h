#ifndef GDX_COMMON_VALUE_H_
#define GDX_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace gdx {

/// Interned identifier for a string (constant name, null label, edge symbol,
/// relation name). Produced by StringInterner.
using SymbolId = uint32_t;

/// A member of the value universe V ∪ N from the paper: either a *constant*
/// (a node id / relational domain element) or a *labeled null* (an unknown
/// value invented by the chase). Values are small, trivially copyable and
/// hashable; the human-readable spelling lives in a Universe.
class Value {
 public:
  enum class Kind : uint8_t { kConstant = 0, kNull = 1 };

  Value() : bits_(0) {}

  /// Makes a constant value with the given interned id.
  static Value Constant(uint32_t id) {
    return Value((static_cast<uint64_t>(id) << 1) | 0u);
  }

  /// Makes a labeled null with the given null index.
  static Value Null(uint32_t id) {
    return Value((static_cast<uint64_t>(id) << 1) | 1u);
  }

  /// Rebuilds a value from its raw() encoding (snapshot round-trips).
  /// Precondition: bits >> 1 fits in 32 bits — i.e. `bits` was produced
  /// by raw(); deserializers must range-check untrusted input first.
  static Value FromRaw(uint64_t bits) { return Value(bits); }

  Kind kind() const {
    return (bits_ & 1u) ? Kind::kNull : Kind::kConstant;
  }
  bool is_constant() const { return (bits_ & 1u) == 0; }
  bool is_null() const { return (bits_ & 1u) != 0; }

  /// The interned id (constant) or null index (null).
  uint32_t id() const { return static_cast<uint32_t>(bits_ >> 1); }

  /// Raw encoding; stable total order with constants before nulls of the
  /// same id. Useful as a map key.
  uint64_t raw() const { return bits_; }

  friend bool operator==(Value a, Value b) { return a.bits_ == b.bits_; }
  friend bool operator!=(Value a, Value b) { return a.bits_ != b.bits_; }
  friend bool operator<(Value a, Value b) {
    // Order by (id, kind) so printing is stable and constants sort first
    // within equal ids; exact order is unimportant, determinism is.
    return a.bits_ < b.bits_;
  }

 private:
  explicit Value(uint64_t bits) : bits_(bits) {}
  uint64_t bits_;
};

/// Hash functor for Value, for use in unordered containers.
struct ValueHash {
  size_t operator()(Value v) const {
    // SplitMix64 finalizer: cheap and well distributed.
    uint64_t x = v.raw() + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

/// Hash functor for a pair of values (e.g. an entry of a binary relation).
struct ValuePairHash {
  size_t operator()(const std::pair<Value, Value>& p) const {
    size_t h1 = ValueHash()(p.first);
    size_t h2 = ValueHash()(p.second);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ull + (h1 << 6) + (h1 >> 2));
  }
};

/// Hash functor for a tuple of values (a relational tuple or query answer).
struct ValueVecHash {
  size_t operator()(const std::vector<Value>& t) const {
    size_t h = 0x345678u;
    for (Value v : t) {
      h = h * 1000003u ^ ValueHash()(v);
    }
    return h ^ t.size();
  }
};

}  // namespace gdx

#endif  // GDX_COMMON_VALUE_H_
