#ifndef GDX_COMMON_TERM_H_
#define GDX_COMMON_TERM_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/interner.h"
#include "common/value.h"

namespace gdx {

/// Query variable identifier, dense per query/dependency (see VarTable).
using VarId = uint32_t;

/// A term in a query atom: either a variable or a constant value.
class Term {
 public:
  static Term Var(VarId v) { return Term(true, v, Value()); }
  static Term Const(Value c) { return Term(false, 0, c); }

  bool is_var() const { return is_var_; }
  bool is_const() const { return !is_var_; }
  VarId var() const { return var_; }
  Value constant() const { return constant_; }

  friend bool operator==(const Term& a, const Term& b) {
    if (a.is_var_ != b.is_var_) return false;
    return a.is_var_ ? a.var_ == b.var_ : a.constant_ == b.constant_;
  }

 private:
  Term(bool is_var, VarId var, Value constant)
      : is_var_(is_var), var_(var), constant_(constant) {}
  bool is_var_;
  VarId var_;
  Value constant_;
};

/// Per-formula variable table: maps variable names to dense VarIds.
/// A VarTable is shared between the body and head of a dependency so the
/// same name denotes the same variable on both sides.
class VarTable {
 public:
  VarId Intern(std::string_view name) { return names_.Intern(name); }
  std::optional<VarId> Find(std::string_view name) const {
    return names_.Find(name);
  }
  const std::string& NameOf(VarId v) const { return names_.NameOf(v); }
  size_t size() const { return names_.size(); }

 private:
  StringInterner names_;
};

}  // namespace gdx

#endif  // GDX_COMMON_TERM_H_
