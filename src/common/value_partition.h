#ifndef GDX_COMMON_VALUE_PARTITION_H_
#define GDX_COMMON_VALUE_PARTITION_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/union_find.h"
#include "common/value.h"

namespace gdx {

/// A congruence over Values built by egd chase steps. Class representatives
/// prefer constants (paper §5: merging a null into a constant replaces the
/// null by the constant); merging two *distinct constants* is a chase
/// failure and is reported as FAILED_PRECONDITION.
class ValuePartition {
 public:
  /// Merges the classes of a and b.
  /// Fails iff the two classes contain distinct constants.
  Status Merge(Value a, Value b) {
    uint32_t ia = IndexOf(a);
    uint32_t ib = IndexOf(b);
    uint32_t ra = uf_.Find(ia);
    uint32_t rb = uf_.Find(ib);
    if (ra == rb) return Status::Ok();
    Value ca = class_constant_[ra];
    Value cb = class_constant_[rb];
    if (ca.is_constant() && cb.is_constant() && ca != cb) {
      return Status::FailedPrecondition(
          "egd chase failure: attempt to merge distinct constants");
    }
    uint32_t root = uf_.Union(ra, rb);
    class_constant_[root] = ca.is_constant() ? ca : cb;
    journal_.emplace_back(a, b);
    return Status::Ok();
  }

  /// The canonical representative of v's class: the class constant if the
  /// class contains one, otherwise the smallest value in the class.
  Value Find(Value v) {
    auto it = index_.find(v.raw());
    if (it == index_.end()) return v;  // never merged: represents itself
    uint32_t root = uf_.Find(it->second);
    Value c = class_constant_[root];
    if (c.is_constant()) return c;
    return class_min_[root];
  }

  bool Same(Value a, Value b) { return Find(a) == Find(b); }

  /// Number of Merge calls that actually joined two classes or were
  /// recorded (the chase's merge journal).
  const std::vector<std::pair<Value, Value>>& journal() const {
    return journal_;
  }

  size_t num_tracked() const { return values_.size(); }

 private:
  uint32_t IndexOf(Value v) {
    auto it = index_.find(v.raw());
    if (it != index_.end()) return it->second;
    uint32_t id = uf_.Add();
    index_.emplace(v.raw(), id);
    values_.push_back(v);
    class_constant_.push_back(v.is_constant() ? v : Value::Null(0xFFFFFFFFu));
    // Sentinel: a null with id 0xFFFFFFFF marks "no constant in class".
    if (!v.is_constant()) class_constant_.back() = kNoConstant();
    class_min_.push_back(v);
    return id;
  }

  static Value kNoConstant() { return Value::Null(0xFFFFFFFFu); }

  UnionFind uf_;
  std::unordered_map<uint64_t, uint32_t> index_;
  std::vector<Value> values_;
  // Per-root: the constant in the class (or sentinel), and the min value.
  std::vector<Value> class_constant_;
  std::vector<Value> class_min_;
  std::vector<std::pair<Value, Value>> journal_;
};

}  // namespace gdx

#endif  // GDX_COMMON_VALUE_PARTITION_H_
