#ifndef GDX_COMMON_BITSET_H_
#define GDX_COMMON_BITSET_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gdx {

/// Flat 64-bit-word bitset for the product-BFS evaluator hot path. Unlike
/// std::vector<bool> every word is directly addressable, Reset() is a
/// memset-speed fill, and TestAndSet folds the visited check and the mark
/// into one read-modify-write of the same word.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(size_t num_bits) { Resize(num_bits); }

  /// Resizes to `num_bits`, clearing all bits.
  void Resize(size_t num_bits) { words_.assign((num_bits + 63) / 64, 0); }

  /// Clears all bits, keeping the size (word-wise fill, no reallocation).
  void Reset() { std::fill(words_.begin(), words_.end(), 0); }

  bool Test(size_t i) const {
    return ((words_[i >> 6] >> (i & 63)) & 1) != 0;
  }

  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }

  /// Sets bit `i`; returns true iff it was previously clear.
  bool TestAndSet(size_t i) {
    uint64_t& word = words_[i >> 6];
    const uint64_t mask = uint64_t{1} << (i & 63);
    if ((word & mask) != 0) return false;
    word |= mask;
    return true;
  }

  /// Calls fn(i) for every set bit, ascending (count-trailing-zeros walk).
  template <typename Fn>
  void ForEachSet(Fn fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const size_t bit = static_cast<size_t>(__builtin_ctzll(w));
        fn(wi * 64 + bit);
        w &= w - 1;
      }
    }
  }

  // --- Word-level mask ops (ISSUE 10 tentpole part 2) ---------------------
  //
  // The bit-parallel multi-source BFS packs 64 BFS sources into one word:
  // word wi holds the source mask of one (state, node) product cell, and
  // frontier expansion is word-wide OR / AND-NOT instead of per-bit walks.

  size_t num_words() const { return words_.size(); }

  uint64_t WordAt(size_t wi) const { return words_[wi]; }

  /// ORs `mask` into word `wi`; returns the bits this call newly set
  /// (mask & ~old) — the frontier delta of a level-synchronous round.
  uint64_t OrWordAt(size_t wi, uint64_t mask) {
    uint64_t& word = words_[wi];
    const uint64_t fresh = mask & ~word;
    word |= fresh;
    return fresh;
  }

 private:
  std::vector<uint64_t> words_;
};

}  // namespace gdx

#endif  // GDX_COMMON_BITSET_H_
