#ifndef GDX_COMMON_FAULT_H_
#define GDX_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace gdx {
namespace fault {

/// Deterministic fault-injection points (ISSUE 8 tentpole). Each point is
/// a place where production code asks "should this operation fail now?"
/// before doing something that can fail in the real world — a checkpoint
/// write, a socket syscall, a queue admission. With no configuration the
/// whole framework is a single relaxed load + branch per probe (the
/// global enabled flag), so shipping the probes costs nothing.
///
/// Configuration comes from the GDX_FAULT environment variable (parsed
/// once at process start) or an explicit Configure() call:
///
///   GDX_FAULT=point:rate:seed[,point:rate:seed...]
///
/// e.g. GDX_FAULT=checkpoint_write:0.1:42,socket_write:0.05:7 — `rate` is
/// the failure probability in [0,1], `seed` makes the failing draw
/// indices a deterministic function of the spec: the n-th probe of a
/// point fails iff hash(seed, n) < rate, so a soak run's fault schedule
/// is reproducible from its spec alone.
enum class Point : uint8_t {
  kCheckpointWrite = 0,  // snapshot tmp-file write
  kCheckpointRename,     // atomic rename over the live checkpoint
  kSocketRead,           // one frame-read syscall sequence
  kSocketWrite,          // one frame-write syscall sequence
  kQueueAdmit,           // admission-queue push
  kNumPoints,
};

/// The spec name of a point ("checkpoint_write", ...).
const char* PointName(Point point);

namespace internal {
extern std::atomic<bool> g_enabled;
bool ShouldFailSlow(Point point);
}  // namespace internal

/// The hot-path probe. Off (the default): one relaxed load and a
/// never-taken branch. On: a deterministic per-point counter draw.
inline bool ShouldFail(Point point) {
  return internal::g_enabled.load(std::memory_order_relaxed) &&
         internal::ShouldFailSlow(point);
}

/// Parses and installs a spec (see above). An empty spec disables every
/// point and resets the counters. Returns false (and installs nothing)
/// on a malformed spec — unknown point name, rate outside [0,1], junk.
bool Configure(const std::string& spec);

/// Installs the GDX_FAULT environment spec, if present. Runs once
/// automatically at process start; callable again by tests.
void ConfigureFromEnv();

/// How many failures a point has injected since its configuration —
/// soak harnesses assert faults actually fired.
uint64_t InjectedCount(Point point);

}  // namespace fault
}  // namespace gdx

#endif  // GDX_COMMON_FAULT_H_
