#ifndef GDX_COMMON_UNIVERSE_H_
#define GDX_COMMON_UNIVERSE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/value.h"

namespace gdx {

/// The immutable-once-shared constant side of a Universe: the interned
/// spelling of every constant. Exactly a StringInterner; the type alias
/// names the role it plays in the copy-on-write split below.
using ConstantTable = StringInterner;

/// The shared value universe of a data-exchange scenario: it owns the
/// spelling of constants and manufactures fresh labeled nulls (N1, N2, ...).
/// All instances, graphs and patterns in one scenario share one Universe.
///
/// Copy-on-write constant sharing (ISSUE 5 tentpole): a Universe is two
/// parts — a shared_ptr'd ConstantTable and a cheap mutable null arena
/// (the null-label vector). Copying a Universe shares the table and
/// copies only the arena, so the per-worker copies the intra-solve search
/// takes fork in O(null count) instead of deep-copying every constant
/// string — on huge-constant (RDF-scale) workloads the difference is the
/// whole interner. The table stays shared as long as every holder only
/// *reads* constants (the search contract: constants are interned at
/// parse/build time, never during a search); the first MakeConstant of a
/// genuinely new name on a sharing holder clones the table for that
/// holder alone (copy-on-write), so divergence is always private.
class Universe {
 public:
  Universe() : constants_(std::make_shared<ConstantTable>()) {}

  /// Interns a constant name and returns the corresponding constant Value.
  /// Clones the shared ConstantTable first iff the name is new and the
  /// table is shared with other Universe copies (copy-on-write).
  Value MakeConstant(std::string_view name) {
    if (auto id = constants_->Find(name)) return Value::Constant(*id);
    if (constants_.use_count() > 1) {
      constants_ = std::make_shared<ConstantTable>(*constants_);
    }
    return Value::Constant(constants_->Intern(name));
  }

  /// Returns the constant for `name` if it was interned before.
  std::optional<Value> FindConstant(std::string_view name) const {
    auto id = constants_->Find(name);
    if (!id) return std::nullopt;
    return Value::Constant(*id);
  }

  /// Manufactures a fresh labeled null (label "N<k>" with k counting from 1).
  Value FreshNull() {
    uint32_t id = static_cast<uint32_t>(null_labels_.size());
    std::string label = "N";
    label += std::to_string(id + 1);
    null_labels_.push_back(std::move(label));
    return Value::Null(id);
  }

  /// Manufactures a fresh null with an explicit label (for readable chases).
  Value FreshNullLabeled(std::string_view label) {
    uint32_t id = static_cast<uint32_t>(null_labels_.size());
    null_labels_.emplace_back(label);
    return Value::Null(id);
  }

  /// Human-readable spelling of any value from this universe.
  std::string NameOf(Value v) const {
    if (v.is_constant()) {
      if (v.id() < constants_->size()) return constants_->NameOf(v.id());
      return "?const" + std::to_string(v.id());
    }
    if (v.id() < null_labels_.size()) return null_labels_[v.id()];
    return "?null" + std::to_string(v.id());
  }

  size_t num_constants() const { return constants_->size(); }
  size_t num_nulls() const { return null_labels_.size(); }

  // --- Copy-on-write observability (ISSUE 5) ------------------------------

  /// The shared constant table itself (read-only). Two Universes returning
  /// the same pointer share one table — the property worker forks rely on.
  std::shared_ptr<const ConstantTable> shared_constants() const {
    return constants_;
  }

  /// How many Universes (plus external shared_ptr holders) currently share
  /// this universe's ConstantTable. 1 = sole owner.
  long constants_use_count() const { return constants_.use_count(); }

  // --- Re-entrant search support (ISSUE 2 tentpole) -----------------------
  //
  // The parallel witness search gives every worker a cheap private copy of
  // the universe and rolls each candidate's fresh-null draws back before
  // trying the next one. Null ids therefore depend only on the candidate's
  // own allocations — the property that makes solve outputs identical for
  // any intra-solve worker count. Constants are never interned during a
  // search (only at parse/build time), so copies agree on all constants —
  // and, since ISSUE 5, share one ConstantTable outright.

  /// A rollback point: the current null count.
  size_t NullMark() const { return null_labels_.size(); }

  /// Discards every null manufactured after `mark`. The caller must not
  /// retain Values for the discarded nulls.
  void RollbackNulls(size_t mark) {
    if (mark < null_labels_.size()) null_labels_.resize(mark);
  }

  /// The labels of all nulls manufactured after `mark` (snapshot for
  /// merging a worker's winning candidate back into the shared universe).
  std::vector<std::string> NullLabelsSince(size_t mark) const {
    if (mark >= null_labels_.size()) return {};
    return std::vector<std::string>(null_labels_.begin() + mark,
                                    null_labels_.end());
  }

  /// Appends label strings verbatim — used to adopt a worker's winning
  /// nulls (and, since ISSUE 5, a cached ChasedScenario's null arena).
  /// Ids line up iff this universe currently holds exactly the nulls the
  /// producer's universe held at its mark.
  void AppendNullLabels(const std::vector<std::string>& labels) {
    null_labels_.insert(null_labels_.end(), labels.begin(), labels.end());
  }

 private:
  std::shared_ptr<ConstantTable> constants_;
  std::vector<std::string> null_labels_;  // the mutable null arena
};

}  // namespace gdx

#endif  // GDX_COMMON_UNIVERSE_H_
