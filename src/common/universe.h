#ifndef GDX_COMMON_UNIVERSE_H_
#define GDX_COMMON_UNIVERSE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/value.h"

namespace gdx {

/// The shared value universe of a data-exchange scenario: it owns the
/// spelling of constants and manufactures fresh labeled nulls (N1, N2, ...).
/// All instances, graphs and patterns in one scenario share one Universe.
class Universe {
 public:
  /// Interns a constant name and returns the corresponding constant Value.
  Value MakeConstant(std::string_view name) {
    return Value::Constant(constants_.Intern(name));
  }

  /// Returns the constant for `name` if it was interned before.
  std::optional<Value> FindConstant(std::string_view name) const {
    auto id = constants_.Find(name);
    if (!id) return std::nullopt;
    return Value::Constant(*id);
  }

  /// Manufactures a fresh labeled null (label "N<k>" with k counting from 1).
  Value FreshNull() {
    uint32_t id = static_cast<uint32_t>(null_labels_.size());
    std::string label = "N";
    label += std::to_string(id + 1);
    null_labels_.push_back(std::move(label));
    return Value::Null(id);
  }

  /// Manufactures a fresh null with an explicit label (for readable chases).
  Value FreshNullLabeled(std::string_view label) {
    uint32_t id = static_cast<uint32_t>(null_labels_.size());
    null_labels_.emplace_back(label);
    return Value::Null(id);
  }

  /// Human-readable spelling of any value from this universe.
  std::string NameOf(Value v) const {
    if (v.is_constant()) {
      if (v.id() < constants_.size()) return constants_.NameOf(v.id());
      return "?const" + std::to_string(v.id());
    }
    if (v.id() < null_labels_.size()) return null_labels_[v.id()];
    return "?null" + std::to_string(v.id());
  }

  size_t num_constants() const { return constants_.size(); }
  size_t num_nulls() const { return null_labels_.size(); }

  // --- Re-entrant search support (ISSUE 2 tentpole) -----------------------
  //
  // The parallel witness search gives every worker a cheap private copy of
  // the universe and rolls each candidate's fresh-null draws back before
  // trying the next one. Null ids therefore depend only on the candidate's
  // own allocations — the property that makes solve outputs identical for
  // any intra-solve worker count. Constants are never interned during a
  // search (only at parse/build time), so copies agree on all constants.

  /// A rollback point: the current null count.
  size_t NullMark() const { return null_labels_.size(); }

  /// Discards every null manufactured after `mark`. The caller must not
  /// retain Values for the discarded nulls.
  void RollbackNulls(size_t mark) {
    if (mark < null_labels_.size()) null_labels_.resize(mark);
  }

  /// The labels of all nulls manufactured after `mark` (snapshot for
  /// merging a worker's winning candidate back into the shared universe).
  std::vector<std::string> NullLabelsSince(size_t mark) const {
    if (mark >= null_labels_.size()) return {};
    return std::vector<std::string>(null_labels_.begin() + mark,
                                    null_labels_.end());
  }

  /// Appends label strings verbatim — used to adopt a worker's winning
  /// nulls. Ids line up iff this universe currently holds exactly the
  /// nulls the worker's copy held at its mark.
  void AppendNullLabels(const std::vector<std::string>& labels) {
    null_labels_.insert(null_labels_.end(), labels.begin(), labels.end());
  }

 private:
  StringInterner constants_;
  std::vector<std::string> null_labels_;
};

}  // namespace gdx

#endif  // GDX_COMMON_UNIVERSE_H_
