#ifndef GDX_COMMON_TASK_FANOUT_H_
#define GDX_COMMON_TASK_FANOUT_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>

#include "common/parallel_search.h"
#include "common/thread_pool.h"

namespace gdx {

/// Completion latch for the workers one fan-out borrows from a shared
/// pool. ThreadPool::Wait() waits for *every* pending task — including
/// sibling solves' — so each fan-out counts down its own tasks instead
/// (same shape as ParallelSearch's latch).
class TaskLatch {
 public:
  explicit TaskLatch(size_t count) : outstanding_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (--outstanding_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return outstanding_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  size_t outstanding_;
};

/// Execution knobs of one FanOutTasks call. All pointers are borrowed for
/// the duration of the call; the shape mirrors DeltaChaseOptions (PR 9),
/// which this helper was factored out of (ISSUE 10: the egd-repair stage
/// fans out the same way).
struct TaskFanoutOptions {
  /// Pool the extra workers run on. nullptr (or max_workers == 1) runs
  /// every task on the caller thread.
  ThreadPool* pool = nullptr;
  /// Worker cap *including* the calling thread; 0 = pool size + 1.
  size_t max_workers = 1;
  /// Polled between task pulls; a fired token drains the fan-out early.
  const CancellationToken* cancel = nullptr;
  /// Wraps every worker's pull loop (including the caller thread's), e.g.
  /// to install thread-local per-solve metric sinks. Must invoke `body`
  /// exactly once. Same contract as ParallelSearchOptions::wrap_worker.
  std::function<void(size_t worker, const std::function<void()>& body)>
      wrap_worker;
};

/// Fans `num_tasks` independent tasks over the pool: workers pull task
/// indices from an atomic cursor until drained; the caller always
/// participates (progress without pool slots, and deadlock-freedom when
/// called *from* a pool worker); blocks until every pulled task ran.
/// Tasks write disjoint state, so pull order is free — determinism comes
/// from the sequential folds that consume the task outputs.
inline void FanOutTasks(
    const TaskFanoutOptions& options, size_t num_tasks,
    const std::function<void(size_t task, size_t worker)>& task) {
  size_t workers = 1;
  if (options.pool != nullptr && options.max_workers != 1 && num_tasks > 1 &&
      // Re-entrant fan-out — a task of this very pool fanning out again
      // (e.g. the existence search's candidate verification running the
      // component-parallel egd repair) — must not Submit-and-wait: with
      // every worker blocked on a sub-task latch, the sub-tasks queued
      // behind them would never be scheduled. The caller loop below
      // already runs every task inline; the outer fan-out keeps the pool
      // saturated.
      ThreadPool::Current() != options.pool &&
      // Same rule for the *caller slot* of an enclosing search/fan-out
      // over this pool (CooperativeScope): its borrowed siblings may be
      // parked on this thread's progress (ScanAll's lead window), so a
      // Submit here waits on a queue no live worker will ever drain.
      ThreadPool::CurrentCooperative() != options.pool) {
    const size_t cap = options.max_workers == 0
                           ? options.pool->num_threads() + 1
                           : options.max_workers;
    workers = std::min(cap, num_tasks);
  }
  std::atomic<size_t> cursor{0};
  auto pull = [&](size_t worker) {
    for (;;) {
      if (options.cancel != nullptr && options.cancel->stop_requested()) {
        return;
      }
      const size_t t = cursor.fetch_add(1, std::memory_order_relaxed);
      if (t >= num_tasks) return;
      task(t, worker);
    }
  };
  auto run = [&](size_t worker) {
    if (options.wrap_worker) {
      options.wrap_worker(worker, [&pull, worker] { pull(worker); });
    } else {
      pull(worker);
    }
  };
  if (workers <= 1) {
    run(0);
    return;
  }
  TaskLatch latch(workers - 1);
  for (size_t w = 1; w < workers; ++w) {
    options.pool->Submit([&run, &latch, w] {
      run(w);
      latch.CountDown();
    });
  }
  {
    // While the caller pulls tasks it is a pool peer: nested fan-outs on
    // the same pool from inside a task must run inline (see above).
    ThreadPool::CooperativeScope scope(options.pool);
    run(0);
  }
  latch.Wait();
}

}  // namespace gdx

#endif  // GDX_COMMON_TASK_FANOUT_H_
