#ifndef GDX_COMMON_RNG_H_
#define GDX_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gdx {

/// Deterministic 64-bit RNG (SplitMix64). All generators in workloads and
/// property tests take an explicit seed so runs are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(NextU64() % span);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Bernoulli(double p) { return UniformDouble() < p; }

  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextU64() % i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace gdx

#endif  // GDX_COMMON_RNG_H_
