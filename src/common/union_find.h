#ifndef GDX_COMMON_UNION_FIND_H_
#define GDX_COMMON_UNION_FIND_H_

#include <cstdint>
#include <numeric>
#include <vector>

namespace gdx {

/// Disjoint-set forest over dense uint32 indices with union by rank and
/// path compression. Used by the egd chase and the sameAs engine.
class UnionFind {
 public:
  explicit UnionFind(size_t n = 0) { Reset(n); }

  void Reset(size_t n) {
    parent_.resize(n);
    std::iota(parent_.begin(), parent_.end(), 0u);
    rank_.assign(n, 0);
    num_classes_ = n;
  }

  /// Adds one more singleton element; returns its index.
  uint32_t Add() {
    uint32_t id = static_cast<uint32_t>(parent_.size());
    parent_.push_back(id);
    rank_.push_back(0);
    ++num_classes_;
    return id;
  }

  uint32_t Find(uint32_t x) {
    uint32_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      uint32_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  /// Merges the classes of a and b; returns the surviving root.
  uint32_t Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return a;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    --num_classes_;
    return a;
  }

  bool Same(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  size_t size() const { return parent_.size(); }
  size_t num_classes() const { return num_classes_; }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint8_t> rank_;
  size_t num_classes_ = 0;
};

}  // namespace gdx

#endif  // GDX_COMMON_UNION_FIND_H_
