#ifndef GDX_WORKLOAD_SCENARIO_PARSER_H_
#define GDX_WORKLOAD_SCENARIO_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "workload/scenario.h"

namespace gdx {

/// Parses the `.gdx` scenario file format — a complete data-exchange
/// setting in one text file. Line-oriented; '#' starts a comment. Example
/// (the paper's Example 2.2):
///
///   relation Flight/3
///   relation Hotel/2
///   fact Flight(01, c1, c2)
///   fact Hotel(01, hx)
///   stgd Flight(x1,x2,x3), Hotel(x1,x4) ->
///        (x2, f . f*, y), (y, h, x4), (y, f . f*, x3)
///   egd (x1, h, x3), (x2, h, x3) -> x1 = x2
///   query (x1, f . f* [h] . f- . (f-)*, x2) -> x1, x2
///
/// Directives: relation, fact, stgd, egd, ttgd, sameas, query. Fact
/// arguments are ground constants (no quoting needed). A dependency may
/// span lines: lines whose first token is not a directive continue the
/// previous directive.
Result<Scenario> ParseScenario(std::string_view text);

/// Convenience: reads and parses a scenario file from disk.
Result<Scenario> LoadScenarioFile(const std::string& path);

}  // namespace gdx

#endif  // GDX_WORKLOAD_SCENARIO_PARSER_H_
