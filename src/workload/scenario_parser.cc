#include "workload/scenario_parser.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/strings.h"
#include "exchange/parser.h"
#include "graph/query_parser.h"

namespace gdx {
namespace {

const char* const kDirectives[] = {"relation", "fact",   "stgd", "egd",
                                   "ttgd",     "sameas", "query"};

bool IsDirective(std::string_view token) {
  for (const char* d : kDirectives) {
    if (token == d) return true;
  }
  return false;
}

/// Splits the text into (directive, payload) statements, joining
/// continuation lines.
std::vector<std::pair<std::string, std::string>> SplitStatements(
    std::string_view text) {
  std::vector<std::pair<std::string, std::string>> statements;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    // Strip comments.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    size_t space = stripped.find_first_of(" \t");
    std::string first(space == std::string_view::npos
                          ? stripped
                          : stripped.substr(0, space));
    if (IsDirective(first)) {
      std::string payload(space == std::string_view::npos
                              ? ""
                              : StripWhitespace(stripped.substr(space)));
      statements.emplace_back(std::move(first), std::move(payload));
    } else if (!statements.empty()) {
      statements.back().second += " ";
      statements.back().second += std::string(stripped);
    } else {
      statements.emplace_back("?", std::string(stripped));
    }
  }
  return statements;
}

Status ParseRelation(const std::string& payload, Schema& schema) {
  size_t slash = payload.find('/');
  if (slash == std::string::npos) {
    return Status::InvalidArgument("relation directive needs Name/arity: " +
                                   payload);
  }
  std::string name(StripWhitespace(payload.substr(0, slash)));
  const char* arity_begin = payload.c_str() + slash + 1;
  char* arity_end = nullptr;
  long arity = std::strtol(arity_begin, &arity_end, 10);
  if (arity_end == arity_begin || name.empty() || arity <= 0) {
    return Status::InvalidArgument("bad relation declaration: " + payload);
  }
  return schema.AddRelation(name, static_cast<size_t>(arity)).ok()
             ? Status::Ok()
             : Status::InvalidArgument("duplicate relation: " + name);
}

Status ParseFact(const std::string& payload, Scenario& s) {
  size_t open = payload.find('(');
  if (open == std::string::npos || payload.back() != ')') {
    return Status::InvalidArgument("fact needs Name(args): " + payload);
  }
  std::string name(StripWhitespace(payload.substr(0, open)));
  auto rel = s.source_schema->Find(name);
  if (!rel.has_value()) {
    return Status::NotFound("fact over undeclared relation: " + name);
  }
  Tuple tuple;
  for (const std::string& arg :
       StrSplit(payload.substr(open + 1, payload.size() - open - 2), ',')) {
    if (arg.empty()) {
      return Status::InvalidArgument("empty fact argument in: " + payload);
    }
    tuple.push_back(s.universe->MakeConstant(arg));
  }
  return s.instance->AddFact(*rel, std::move(tuple));
}

}  // namespace

Result<Scenario> ParseScenario(std::string_view text) {
  Scenario s;
  s.universe = std::make_unique<Universe>();
  s.source_schema = std::make_unique<Schema>();
  s.alphabet = std::make_unique<Alphabet>();
  s.instance = std::make_unique<Instance>(s.source_schema.get());
  s.setting.source_schema = s.source_schema.get();
  s.setting.alphabet = s.alphabet.get();

  for (const auto& [directive, payload] : SplitStatements(text)) {
    if (directive == "relation") {
      Status st = ParseRelation(payload, *s.source_schema);
      if (!st.ok()) return st;
    } else if (directive == "fact") {
      // Facts may arrive before all relations are declared only if their
      // relation exists already; the format requires declaration first.
      Status st = ParseFact(payload, s);
      if (!st.ok()) return st;
    } else if (directive == "stgd") {
      Result<StTgd> tgd = ParseStTgd(payload, s.source_schema.get(),
                                     *s.alphabet, *s.universe);
      if (!tgd.ok()) return tgd.status();
      s.setting.st_tgds.push_back(std::move(tgd).value());
    } else if (directive == "egd") {
      Result<TargetEgd> egd =
          ParseTargetEgd(payload, *s.alphabet, *s.universe);
      if (!egd.ok()) return egd.status();
      s.setting.egds.push_back(std::move(egd).value());
    } else if (directive == "ttgd") {
      Result<TargetTgd> tgd =
          ParseTargetTgd(payload, *s.alphabet, *s.universe);
      if (!tgd.ok()) return tgd.status();
      s.setting.target_tgds.push_back(std::move(tgd).value());
    } else if (directive == "sameas") {
      Result<SameAsConstraint> sac =
          ParseSameAsConstraint(payload, *s.alphabet, *s.universe);
      if (!sac.ok()) return sac.status();
      s.setting.sameas.push_back(std::move(sac).value());
    } else if (directive == "query") {
      Result<CnreQuery> query =
          ParseCnreQuery(payload, *s.alphabet, *s.universe);
      if (!query.ok()) return query.status();
      s.query = std::make_unique<CnreQuery>(std::move(query).value());
    } else {
      return Status::InvalidArgument("unknown directive near: " + payload);
    }
  }
  if (s.setting.st_tgds.empty()) {
    return Status::InvalidArgument("scenario declares no s-t tgds");
  }
  return s;
}

Result<Scenario> LoadScenarioFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open scenario file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseScenario(buffer.str());
}

}  // namespace gdx
