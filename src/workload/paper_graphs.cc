#include "workload/paper_graphs.h"

namespace gdx {
namespace {

Value C(Scenario& s, const char* name) {
  return s.universe->MakeConstant(name);
}

}  // namespace

Graph BuildFigure1G1(Scenario& s) {
  SymbolId f = s.alphabet->Intern("f");
  SymbolId h = s.alphabet->Intern("h");
  Value n = s.universe->FreshNullLabeled("N");
  Graph g;
  g.AddEdge(C(s, "c1"), f, n);
  g.AddEdge(C(s, "c3"), f, n);
  g.AddEdge(n, f, C(s, "c2"));
  g.AddEdge(n, h, C(s, "hx"));
  g.AddEdge(n, h, C(s, "hy"));
  return g;
}

Graph BuildFigure1G2(Scenario& s) {
  SymbolId f = s.alphabet->Intern("f");
  SymbolId h = s.alphabet->Intern("h");
  Value n1 = s.universe->FreshNullLabeled("N1");
  Value n2 = s.universe->FreshNullLabeled("N2");
  Graph g;
  g.AddEdge(C(s, "c1"), f, n1);
  g.AddEdge(C(s, "c3"), f, n1);
  g.AddEdge(n1, f, n2);
  g.AddEdge(n1, f, C(s, "c2"));
  g.AddEdge(n2, f, C(s, "c2"));
  g.AddEdge(n2, h, C(s, "hx"));
  g.AddEdge(n2, h, C(s, "hy"));
  return g;
}

Graph BuildFigure1G3(Scenario& s) {
  SymbolId f = s.alphabet->Intern("f");
  SymbolId h = s.alphabet->Intern("h");
  SymbolId same_as = s.alphabet->SameAsSymbol();
  Value n1 = s.universe->FreshNullLabeled("N1");
  Value n2 = s.universe->FreshNullLabeled("N2");
  Value n3 = s.universe->FreshNullLabeled("N3");
  Graph g;
  g.AddEdge(C(s, "c1"), f, n1);
  g.AddEdge(n1, f, n2);
  g.AddEdge(n2, f, C(s, "c2"));
  g.AddEdge(C(s, "c3"), f, n3);
  g.AddEdge(n3, f, C(s, "c2"));
  g.AddEdge(n1, h, C(s, "hx"));
  g.AddEdge(n2, h, C(s, "hy"));
  g.AddEdge(n3, h, C(s, "hx"));
  // The dotted sameAs edges of the figure: hx's two cities.
  g.AddEdge(n1, same_as, n3);
  g.AddEdge(n3, same_as, n1);
  return g;
}

Graph BuildFigure7(Scenario& s) {
  SymbolId h = s.alphabet->Intern("h");
  Graph g = BuildFigure1G1(s);
  // Extra hotel edges out of c2 break the "hotel in exactly one city" egd
  // while leaving the Figure 5 pattern's homomorphism intact.
  g.AddEdge(C(s, "c2"), h, C(s, "hx"));
  g.AddEdge(C(s, "c2"), h, C(s, "hy"));
  return g;
}

}  // namespace gdx
