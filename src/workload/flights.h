#ifndef GDX_WORKLOAD_FLIGHTS_H_
#define GDX_WORKLOAD_FLIGHTS_H_

#include "common/rng.h"
#include "workload/scenario.h"

namespace gdx {

/// Which target-constraint flavor to attach to a Flight/Hotel scenario.
enum class FlightConstraintMode {
  kNone,    // M_t = ∅  (§3.2: universal representatives exist)
  kEgd,     // hotel in exactly one city, as an egd  (Example 2.2's Ω)
  kSameAs,  // the sameAs version                    (Example 2.2's Ω′)
};

/// Parameters of the generated Flight/Hotel workload — the paper's running
/// example at scale. Flights connect random city pairs; each flight's
/// passengers stop at `hotels_per_flight` hotels drawn from a shared pool
/// (sharing is what makes the egd merge cities).
struct FlightWorkloadParams {
  size_t num_cities = 10;
  size_t num_flights = 20;
  size_t num_hotels = 8;
  size_t hotels_per_flight = 2;
  FlightConstraintMode mode = FlightConstraintMode::kEgd;
  uint64_t seed = 42;
};

/// Builds the generated scenario: schema {Flight/3, Hotel/2}, alphabet
/// {f, h}, the Example 2.2 mapping
///   Flight(x1,x2,x3) ∧ Hotel(x1,x4) →
///       ∃y (x2, f·f*, y) ∧ (y, h, x4) ∧ (y, f·f*, x3)
/// plus the chosen constraint flavor and the Example 2.2 query
///   Q = (x1, f·f*[h]·f⁻·(f⁻)*, x2).
Scenario MakeFlightScenario(const FlightWorkloadParams& params);

/// The exact instance of Example 2.2: flights 01 (c1→c2) and 02 (c3→c2);
/// hotel stops (01,hx), (01,hy), (02,hx). With mode kEgd this is the
/// paper's Ω, with kSameAs its Ω′.
Scenario MakeExample22Scenario(FlightConstraintMode mode);

/// Example 3.1's restricted mapping (single-symbol heads):
///   Flight(x1,x2,x3) ∧ Hotel(x1,x4) →
///       ∃y (x2, f, y) ∧ (y, h, x4) ∧ (y, f, x3)
/// over the Example 2.2 instance, with the egd — the §3.1 relational case
/// (Figure 2).
Scenario MakeExample31Scenario();

/// Example 5.2's setting: source {R/1, P/1} with R(c1), P(c2); s-t tgd
///   R(x) ∧ P(y) → (x, a·(b* + c*)·a, y); egd (x, a+b+c, y) → x = y.
/// The adapted chase succeeds yet no solution exists (Figure 6).
Scenario MakeExample52Scenario();

}  // namespace gdx

#endif  // GDX_WORKLOAD_FLIGHTS_H_
