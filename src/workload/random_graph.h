#ifndef GDX_WORKLOAD_RANDOM_GRAPH_H_
#define GDX_WORKLOAD_RANDOM_GRAPH_H_

#include "common/rng.h"
#include "common/universe.h"
#include "graph/graph.h"
#include "graph/nre.h"

namespace gdx {

/// Parameters for uniform random edge-labeled multigraphs.
struct RandomGraphParams {
  size_t num_nodes = 100;
  size_t num_edges = 400;
  size_t num_labels = 3;   // labels l1..lk interned into the alphabet
  uint64_t seed = 7;
};

/// Generates a random graph over constants v1..vn with uniformly random
/// labeled edges (duplicates retried a bounded number of times).
Graph MakeRandomGraph(const RandomGraphParams& params, Universe& universe,
                      Alphabet& alphabet);

/// Generates a random NRE of the given AST depth over the alphabet's first
/// `num_labels` symbols: leaves are symbols/inverses/ε, inner nodes are
/// union/concat/star/nest with star and nest probability damped to keep
/// languages non-degenerate.
NrePtr MakeRandomNre(size_t depth, size_t num_labels, Alphabet& alphabet,
                     Rng& rng);

}  // namespace gdx

#endif  // GDX_WORKLOAD_RANDOM_GRAPH_H_
