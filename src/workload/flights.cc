#include "workload/flights.h"

#include <string>

#include "exchange/parser.h"
#include "graph/nre_parser.h"

namespace gdx {
namespace {

/// Shared skeleton: schema, alphabet, mapping, query; callers fill facts.
Scenario MakeFlightSkeleton(FlightConstraintMode mode) {
  Scenario s;
  s.universe = std::make_unique<Universe>();
  s.source_schema = std::make_unique<Schema>();
  s.alphabet = std::make_unique<Alphabet>();
  (void)s.source_schema->AddRelation("Flight", 3);
  (void)s.source_schema->AddRelation("Hotel", 2);
  s.instance = std::make_unique<Instance>(s.source_schema.get());
  s.setting.source_schema = s.source_schema.get();
  s.setting.alphabet = s.alphabet.get();

  Result<StTgd> tgd = ParseStTgd(
      "Flight(x1, x2, x3), Hotel(x1, x4) -> "
      "(x2, f . f*, y), (y, h, x4), (y, f . f*, x3)",
      s.source_schema.get(), *s.alphabet, *s.universe);
  s.setting.st_tgds.push_back(std::move(tgd).value());

  switch (mode) {
    case FlightConstraintMode::kNone:
      break;
    case FlightConstraintMode::kEgd: {
      Result<TargetEgd> egd = ParseTargetEgd(
          "(x1, h, x3), (x2, h, x3) -> x1 = x2", *s.alphabet, *s.universe);
      s.setting.egds.push_back(std::move(egd).value());
      break;
    }
    case FlightConstraintMode::kSameAs: {
      Result<SameAsConstraint> sac = ParseSameAsConstraint(
          "(x1, h, x3), (x2, h, x3) -> (x1, sameAs, x2)", *s.alphabet,
          *s.universe);
      s.setting.sameas.push_back(std::move(sac).value());
      break;
    }
  }

  // Q = (x1, f . f* [h] . f- . (f-)*, x2) — Example 2.2.
  s.query = std::make_unique<CnreQuery>();
  VarId x1 = s.query->InternVar("x1");
  VarId x2 = s.query->InternVar("x2");
  Result<NrePtr> q = ParseNre("f . f* [h] . f- . (f-)*", *s.alphabet);
  s.query->AddAtom(Term::Var(x1), std::move(q).value(), Term::Var(x2));
  s.query->SetHead({x1, x2});
  return s;
}

void AddFlight(Scenario& s, const std::string& id, const std::string& src,
               const std::string& dst) {
  RelationId flight = s.source_schema->Find("Flight").value();
  (void)s.instance->AddFact(flight, {s.universe->MakeConstant(id),
                                     s.universe->MakeConstant(src),
                                     s.universe->MakeConstant(dst)});
}

void AddHotelStop(Scenario& s, const std::string& flight_id,
                  const std::string& hotel_id) {
  RelationId hotel = s.source_schema->Find("Hotel").value();
  (void)s.instance->AddFact(hotel, {s.universe->MakeConstant(flight_id),
                                    s.universe->MakeConstant(hotel_id)});
}

}  // namespace

Scenario MakeFlightScenario(const FlightWorkloadParams& params) {
  Scenario s = MakeFlightSkeleton(params.mode);
  Rng rng(params.seed);
  for (size_t i = 0; i < params.num_flights; ++i) {
    size_t src = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(params.num_cities) - 1));
    size_t dst = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(params.num_cities) - 1));
    if (dst == src) dst = (dst + 1) % params.num_cities;
    std::string id = "fl" + std::to_string(i + 1);
    AddFlight(s, id, "city" + std::to_string(src + 1),
              "city" + std::to_string(dst + 1));
    for (size_t k = 0; k < params.hotels_per_flight; ++k) {
      size_t hotel = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(params.num_hotels) - 1));
      AddHotelStop(s, id, "hotel" + std::to_string(hotel + 1));
    }
  }
  return s;
}

Scenario MakeExample22Scenario(FlightConstraintMode mode) {
  Scenario s = MakeFlightSkeleton(mode);
  AddFlight(s, "01", "c1", "c2");
  AddFlight(s, "02", "c3", "c2");
  AddHotelStop(s, "01", "hx");
  AddHotelStop(s, "01", "hy");
  AddHotelStop(s, "02", "hx");
  return s;
}

Scenario MakeExample31Scenario() {
  Scenario s;
  s.universe = std::make_unique<Universe>();
  s.source_schema = std::make_unique<Schema>();
  s.alphabet = std::make_unique<Alphabet>();
  (void)s.source_schema->AddRelation("Flight", 3);
  (void)s.source_schema->AddRelation("Hotel", 2);
  s.instance = std::make_unique<Instance>(s.source_schema.get());
  s.setting.source_schema = s.source_schema.get();
  s.setting.alphabet = s.alphabet.get();

  Result<StTgd> tgd = ParseStTgd(
      "Flight(x1, x2, x3), Hotel(x1, x4) -> "
      "(x2, f, y), (y, h, x4), (y, f, x3)",
      s.source_schema.get(), *s.alphabet, *s.universe);
  s.setting.st_tgds.push_back(std::move(tgd).value());
  Result<TargetEgd> egd = ParseTargetEgd(
      "(x1, h, x3), (x2, h, x3) -> x1 = x2", *s.alphabet, *s.universe);
  s.setting.egds.push_back(std::move(egd).value());

  AddFlight(s, "01", "c1", "c2");
  AddFlight(s, "02", "c3", "c2");
  AddHotelStop(s, "01", "hx");
  AddHotelStop(s, "01", "hy");
  AddHotelStop(s, "02", "hx");
  return s;
}

Scenario MakeExample52Scenario() {
  Scenario s;
  s.universe = std::make_unique<Universe>();
  s.source_schema = std::make_unique<Schema>();
  s.alphabet = std::make_unique<Alphabet>();
  Result<RelationId> r = s.source_schema->AddRelation("R", 1);
  Result<RelationId> p = s.source_schema->AddRelation("P", 1);
  s.instance = std::make_unique<Instance>(s.source_schema.get());
  s.setting.source_schema = s.source_schema.get();
  s.setting.alphabet = s.alphabet.get();

  Result<StTgd> tgd = ParseStTgd(
      "R(x), P(y) -> (x, a . (b* + c*) . a, y)", s.source_schema.get(),
      *s.alphabet, *s.universe);
  s.setting.st_tgds.push_back(std::move(tgd).value());
  Result<TargetEgd> egd = ParseTargetEgd("(x, a + b + c, y) -> x = y",
                                         *s.alphabet, *s.universe);
  s.setting.egds.push_back(std::move(egd).value());

  (void)s.instance->AddFact(*r, {s.universe->MakeConstant("c1")});
  (void)s.instance->AddFact(*p, {s.universe->MakeConstant("c2")});
  return s;
}

}  // namespace gdx
