#ifndef GDX_WORKLOAD_SCENARIO_H_
#define GDX_WORKLOAD_SCENARIO_H_

#include <memory>

#include "common/universe.h"
#include "exchange/setting.h"
#include "graph/cnre.h"
#include "relational/instance.h"

namespace gdx {

/// A self-contained data-exchange scenario: owns the universe, schemas and
/// instance that the Setting points into. Everything examples, tests and
/// benches need in one bundle.
struct Scenario {
  std::unique_ptr<Universe> universe;
  std::unique_ptr<Schema> source_schema;
  std::unique_ptr<Alphabet> alphabet;
  std::unique_ptr<Instance> instance;
  Setting setting;
  /// The scenario's signature query, if any (e.g. Example 2.2's Q).
  std::unique_ptr<CnreQuery> query;

  Scenario() = default;
  Scenario(Scenario&&) = default;
  Scenario& operator=(Scenario&&) = default;
};

}  // namespace gdx

#endif  // GDX_WORKLOAD_SCENARIO_H_
