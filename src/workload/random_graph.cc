#include "workload/random_graph.h"

#include <string>
#include <vector>

namespace gdx {

Graph MakeRandomGraph(const RandomGraphParams& params, Universe& universe,
                      Alphabet& alphabet) {
  std::vector<Value> nodes;
  nodes.reserve(params.num_nodes);
  for (size_t i = 0; i < params.num_nodes; ++i) {
    nodes.push_back(universe.MakeConstant("v" + std::to_string(i + 1)));
  }
  std::vector<SymbolId> labels;
  for (size_t i = 0; i < params.num_labels; ++i) {
    labels.push_back(alphabet.Intern("l" + std::to_string(i + 1)));
  }
  Graph g;
  for (Value v : nodes) g.AddNode(v);
  Rng rng(params.seed);
  size_t added = 0;
  size_t attempts = 0;
  const size_t max_attempts = params.num_edges * 20 + 100;
  while (added < params.num_edges && attempts < max_attempts) {
    ++attempts;
    Value u = nodes[rng.NextU64() % nodes.size()];
    Value v = nodes[rng.NextU64() % nodes.size()];
    SymbolId l = labels[rng.NextU64() % labels.size()];
    if (g.AddEdge(u, l, v)) ++added;
  }
  return g;
}

NrePtr MakeRandomNre(size_t depth, size_t num_labels, Alphabet& alphabet,
                     Rng& rng) {
  auto symbol = [&]() {
    return alphabet.Intern(
        "l" + std::to_string(1 + rng.NextU64() % num_labels));
  };
  if (depth == 0) {
    switch (rng.NextU64() % 8) {
      case 0:
        return Nre::Epsilon();
      case 1:
      case 2:
        return Nre::Inverse(symbol());
      default:
        return Nre::Symbol(symbol());
    }
  }
  switch (rng.NextU64() % 8) {
    case 0:
    case 1:
    case 2:
      return Nre::Union(MakeRandomNre(depth - 1, num_labels, alphabet, rng),
                        MakeRandomNre(depth - 1, num_labels, alphabet, rng));
    case 3:
    case 4:
    case 5:
      return Nre::Concat(MakeRandomNre(depth - 1, num_labels, alphabet, rng),
                         MakeRandomNre(depth - 1, num_labels, alphabet, rng));
    case 6:
      return Nre::Star(MakeRandomNre(depth - 1, num_labels, alphabet, rng));
    default:
      return Nre::Nest(MakeRandomNre(depth - 1, num_labels, alphabet, rng));
  }
}

}  // namespace gdx
