#ifndef GDX_WORKLOAD_PAPER_GRAPHS_H_
#define GDX_WORKLOAD_PAPER_GRAPHS_H_

#include "graph/graph.h"
#include "workload/scenario.h"

namespace gdx {

/// Concrete graphs from the paper's figures, built against an Example 2.2
/// scenario's universe/alphabet (constants c1, c2, c3, hx, hy; labels f, h,
/// sameAs). Each builder invents the figure's nulls via FreshNullLabeled.

/// Figure 1(a) G1: one city N holds both hotels; a solution under Ω (egd).
Graph BuildFigure1G1(Scenario& s);

/// Figure 1(b) G2: flights pass through N1 then the hotel city N2;
/// another solution under Ω.
Graph BuildFigure1G2(Scenario& s);

/// Figure 1(c) G3: hx lives in two cities N1, N3 linked by (dotted) sameAs
/// edges; a solution under Ω′ (sameAs) but not under Ω.
Graph BuildFigure1G3(Scenario& s);

/// Figure 7 (Example 5.4): G1 plus stray h edges out of c2 — admits a
/// homomorphism from the Figure 5 pattern yet violates the egd, witnessing
/// Proposition 5.3 (patterns alone are not universal with egds).
Graph BuildFigure7(Scenario& s);

}  // namespace gdx

#endif  // GDX_WORKLOAD_PAPER_GRAPHS_H_
