#ifndef GDX_SERVE_BOUNDED_QUEUE_H_
#define GDX_SERVE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <utility>

namespace gdx {
namespace serve {

/// Bounded MPMC queue with *rejecting* admission control — the server's
/// backpressure seam. TryPush never blocks: a full queue returns
/// kFull immediately so the session thread can answer the client with a
/// typed QUEUE_FULL error instead of stalling the connection (clients
/// retry; scripts/soak_serve.py drives the server at saturation through
/// exactly this path). Pop blocks until an item arrives or the queue is
/// closed *and* drained — so closing lets in-flight work finish
/// (graceful drain) while refusing new admissions.
template <typename T>
class BoundedQueue {
 public:
  enum class PushResult { kOk, kFull, kClosed };

  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  PushResult TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return PushResult::kOk;
  }

  /// Blocks until an item is available (returns true) or the queue is
  /// closed and empty (returns false — the worker's exit signal).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Stops admissions; queued items still drain through Pop. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// Session-fair bounded MPMC queue (ISSUE 8 tentpole): the same rejecting
/// admission contract as BoundedQueue, plus per-session round-robin
/// dispatch and per-session admission quotas, so one chatty client cannot
/// monopolize either the queue slots or the workers' attention.
///
/// Each session key owns a FIFO lane. Pop serves lanes round-robin (one
/// item per turn, rotating), so K active sessions each get ~1/K of the
/// worker throughput regardless of how fast any one of them submits.
/// TryPush enforces two caps: the global capacity, and a per-session quota
/// of max(1, capacity / active_sessions) — counting the newcomer — so a
/// burst from one session fills at most its fair share once others are
/// waiting, while a *lone* session may still use the whole queue (quota =
/// capacity when it is the only one — single-client behavior, and every
/// BoundedQueue admission test, is unchanged).
template <typename T>
class FairQueue {
 public:
  using PushResult = typename BoundedQueue<T>::PushResult;

  explicit FairQueue(size_t capacity) : capacity_(capacity) {}

  PushResult TryPush(uint64_t session, T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (total_ >= capacity_) return PushResult::kFull;
      auto it = lanes_.find(session);
      // Quota counts the newcomer's own lane even before it exists.
      const size_t active = lanes_.size() + (it == lanes_.end() ? 1 : 0);
      const size_t quota = capacity_ / active > 0 ? capacity_ / active : 1;
      if (it != lanes_.end() && it->second.size() >= quota) {
        return PushResult::kFull;
      }
      if (it == lanes_.end()) {
        it = lanes_.emplace(session, std::deque<T>()).first;
        rr_.push_back(session);  // takes its turn after the current lap
      }
      it->second.push_back(std::move(item));
      ++total_;
    }
    ready_.notify_one();
    return PushResult::kOk;
  }

  /// Round-robin Pop: takes the front item of the next session's lane and
  /// rotates that session to the back of the turn order. Blocks / closes
  /// exactly like BoundedQueue::Pop.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || total_ > 0; });
    if (total_ == 0) return false;  // closed and drained
    const uint64_t session = rr_.front();
    rr_.pop_front();
    auto it = lanes_.find(session);
    *out = std::move(it->second.front());
    it->second.pop_front();
    --total_;
    if (it->second.empty()) {
      lanes_.erase(it);  // an empty lane holds no turn (and no quota share)
    } else {
      rr_.push_back(session);
    }
    return true;
  }

  /// Stops admissions; queued items still drain through Pop. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  /// session -> its FIFO lane. A session has a lane iff it has >= 1 item.
  std::map<uint64_t, std::deque<T>> lanes_;
  /// Turn order: each session with a nonempty lane appears exactly once.
  std::deque<uint64_t> rr_;
  size_t total_ = 0;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace gdx

#endif  // GDX_SERVE_BOUNDED_QUEUE_H_
