#ifndef GDX_SERVE_BOUNDED_QUEUE_H_
#define GDX_SERVE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace gdx {
namespace serve {

/// Bounded MPMC queue with *rejecting* admission control — the server's
/// backpressure seam. TryPush never blocks: a full queue returns
/// kFull immediately so the session thread can answer the client with a
/// typed QUEUE_FULL error instead of stalling the connection (clients
/// retry; scripts/soak_serve.py drives the server at saturation through
/// exactly this path). Pop blocks until an item arrives or the queue is
/// closed *and* drained — so closing lets in-flight work finish
/// (graceful drain) while refusing new admissions.
template <typename T>
class BoundedQueue {
 public:
  enum class PushResult { kOk, kFull, kClosed };

  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  PushResult TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return PushResult::kOk;
  }

  /// Blocks until an item is available (returns true) or the queue is
  /// closed and empty (returns false — the worker's exit signal).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Stops admissions; queued items still drain through Pop. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace gdx

#endif  // GDX_SERVE_BOUNDED_QUEUE_H_
