#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/fault.h"
#include "workload/scenario_parser.h"

namespace gdx {
namespace serve {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Best-effort fsync of a path (file or directory). Durability hardening,
/// not correctness: a failed fsync degrades to the pre-ISSUE-8 behavior.
void SyncPath(const char* path, bool directory) {
  int fd = ::open(path, O_RDONLY | (directory ? O_DIRECTORY : 0));
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

/// One accepted connection. The session thread is the only reader of the
/// fd; writers (the session thread for control frames, any worker for a
/// streamed result) serialize through `write_mutex_` so concurrently
/// finishing scenarios never interleave frame bytes. The fd closes when
/// the last reference drops — a session with in-flight jobs outlives its
/// read loop, so results of admitted work always have somewhere to go.
class Session {
 public:
  explicit Session(int fd) : fd_(fd) {}
  ~Session() {
    if (fd_ >= 0) ::close(fd_);
  }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  int fd() const { return fd_; }

  Status Write(FrameType type, std::string_view payload) {
    std::lock_guard<std::mutex> lock(write_mutex_);
    return WriteFrame(fd_, type, payload);
  }

  /// Wakes a read blocked in ReadFrame (recv returns 0) while leaving
  /// the write half open for a final kBye.
  void ShutdownRead() { ::shutdown(fd_, SHUT_RD); }

  bool hello_done = false;
  /// Set by the session thread the moment its read loop exits (EOF, reset,
  /// protocol violation). The watchdog reads it to cancel in-flight work
  /// whose reply has nowhere to go (ISSUE 8).
  std::atomic<bool> read_closed{false};

 private:
  int fd_;
  std::mutex write_mutex_;
};

ExchangeServer::ExchangeServer(ServeOptions options)
    : options_(std::move(options)) {}

ExchangeServer::~ExchangeServer() {
  if (listen_fd_ >= 0) {
    RequestStop();
    Wait();
  }
  if (!options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }
}

Status ExchangeServer::Start() {
  if (options_.stats != nullptr) {
    stats_ = options_.stats;
  } else {
    owned_stats_ = std::make_unique<obs::StatsRegistry>();
    stats_ = owned_stats_.get();
  }
  options_.engine.stats = stats_;

  connections_ = stats_->GetCounter("serve.connections");
  accepted_ = stats_->GetCounter("serve.requests.accepted");
  rejected_full_ = stats_->GetCounter("serve.requests.rejected_full");
  rejected_draining_ =
      stats_->GetCounter("serve.requests.rejected_draining");
  completed_ = stats_->GetCounter("serve.requests.completed");
  request_errors_ = stats_->GetCounter("serve.requests.errors");
  protocol_errors_ = stats_->GetCounter("serve.protocol_errors");
  canceled_ = stats_->GetCounter("serve.requests.canceled");
  deadline_exceeded_ =
      stats_->GetCounter("serve.requests.deadline_exceeded");
  rejected_overloaded_ =
      stats_->GetCounter("serve.requests.rejected_overloaded");
  queue_depth_ = stats_->GetGauge("serve.queue_depth");
  checkpoint_saves_ = stats_->GetCounter("serve.checkpoint.saves");
  checkpoint_restores_ = stats_->GetCounter("serve.checkpoint.restores");
  checkpoint_failures_ = stats_->GetCounter("serve.checkpoint.failures");
  request_ns_ = stats_->GetHistogram("serve.request_ns");
  queue_wait_ns_ = stats_->GetHistogram("serve.queue_wait_ns");

  engine_ = std::make_unique<ExchangeEngine>(options_.engine);

  // Warm-start from the latest checkpoint: a killed-and-restarted server
  // resumes with the memos it had already earned, so re-sent scenarios
  // hit the chased/compiled memos instead of redoing the work (the soak
  // harness asserts zero chase/compile misses after a restart).
  if (!options_.checkpoint_path.empty() &&
      FileExists(options_.checkpoint_path)) {
    Result<SnapshotRestoreStats> restored =
        engine_->WarmStart(options_.checkpoint_path);
    if (restored.ok()) checkpoint_restores_->Increment();
    // A corrupt checkpoint restores nothing; the server just runs cold.
  }

  queue_ = std::make_unique<FairQueue<Job>>(
      options_.queue_capacity == 0 ? 1 : options_.queue_capacity);

  const bool use_unix = !options_.socket_path.empty();
  if (!use_unix && options_.port < 0) {
    return Status::InvalidArgument(
        "serve: need --socket=PATH or --port=N");
  }
  if (use_unix) {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("serve: socket path too long: " +
                                     options_.socket_path);
    }
    std::memcpy(addr.sun_path, options_.socket_path.c_str(),
                options_.socket_path.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::Internal(std::string("serve: socket: ") +
                              std::strerror(errno));
    }
    ::unlink(options_.socket_path.c_str());  // stale socket from a crash
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      return Status::Internal("serve: bind " + options_.socket_path +
                              ": " + std::strerror(errno));
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::Internal(std::string("serve: socket: ") +
                              std::strerror(errno));
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
    addr.sin_port = htons(static_cast<uint16_t>(options_.port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      return Status::Internal("serve: bind port " +
                              std::to_string(options_.port) + ": " +
                              std::strerror(errno));
    }
  }
  if (::listen(listen_fd_, 128) < 0) {
    return Status::Internal(std::string("serve: listen: ") +
                            std::strerror(errno));
  }
  if (!use_unix) {
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      bound_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  }

  size_t workers = options_.num_workers;
  if (workers == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1 : hw;
  }
  num_workers_ = workers;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (!options_.checkpoint_path.empty() &&
      options_.checkpoint_interval_ms > 0) {
    checkpoint_thread_ = std::thread([this] { CheckpointLoop(); });
  }
  if (options_.watchdog_interval_ms > 0) {
    watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void ExchangeServer::AcceptLoop() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (drain) or hard error
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      continue;
    }
    connections_->Increment();
    auto session = std::make_shared<Session>(fd);
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_.push_back(session);
    session_threads_.emplace_back(
        [this, session] { SessionLoop(session); });
  }
}

void ExchangeServer::SessionLoop(std::shared_ptr<Session> session) {
  while (true) {
    Frame frame;
    ServeError wire_error = ServeError::kNone;
    Status read = ReadFrame(session->fd(), &frame, &wire_error);
    if (!read.ok()) {
      // EOF / transport loss ends the session silently; a malformed
      // frame gets the typed error first (best effort — the peer may
      // already be gone). Either way only this connection closes: the
      // server survives arbitrary garbage (scripts/check_protocol.py).
      if (wire_error != ServeError::kNone) {
        protocol_errors_->Increment();
        session->Write(FrameType::kError,
                       EncodeError(0, wire_error, read.message()));
      }
      break;
    }
    if (!HandleFrame(session, frame)) break;
  }
  // Mark the read half dead *before* deregistering: the watchdog cancels
  // this session's in-flight solves — their replies have nowhere to go.
  session->read_closed.store(true, std::memory_order_release);
  // Drop this session's entry; in-flight jobs keep the fd alive through
  // their own shared_ptr until their results have streamed.
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  for (size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i] == session) {
      sessions_.erase(sessions_.begin() + i);
      break;
    }
  }
}

bool ExchangeServer::HandleFrame(const std::shared_ptr<Session>& session,
                                 const Frame& frame) {
  if (!session->hello_done) {
    if (frame.type != FrameType::kHello) {
      protocol_errors_->Increment();
      session->Write(FrameType::kError,
                     EncodeError(0, ServeError::kNotReady,
                                 "first frame must be HELLO"));
      return false;
    }
    uint32_t version = 0;
    if (!DecodeHello(frame.payload, &version)) {
      protocol_errors_->Increment();
      session->Write(FrameType::kError,
                     EncodeError(0, ServeError::kBadFrame,
                                 "malformed HELLO payload"));
      return false;
    }
    if (version != kProtocolVersion) {
      protocol_errors_->Increment();
      session->Write(
          FrameType::kError,
          EncodeError(0, ServeError::kVersionMismatch,
                      "server speaks protocol v" +
                          std::to_string(kProtocolVersion) +
                          ", client sent v" + std::to_string(version)));
      return false;
    }
    session->hello_done = true;
    HelloAck ack;
    ack.queue_capacity = static_cast<uint32_t>(queue_->capacity());
    return session->Write(FrameType::kHelloAck, EncodeHelloAck(ack)).ok();
  }

  switch (frame.type) {
    case FrameType::kRequest: {
      Request request;
      if (!DecodeRequest(frame.payload, &request)) {
        protocol_errors_->Increment();
        session->Write(FrameType::kError,
                       EncodeError(0, ServeError::kBadFrame,
                                   "malformed REQUEST payload"));
        return false;
      }
      // Fault point (ISSUE 8): admission dropped on the floor — the
      // client sees it as an ordinary QUEUE_FULL and retries.
      if (fault::ShouldFail(fault::Point::kQueueAdmit)) {
        rejected_full_->Increment();
        session->Write(FrameType::kError,
                       EncodeError(request.id, ServeError::kQueueFull,
                                   "scenario queue is full"));
        return true;
      }
      // Load shedding (ISSUE 8): when the predicted queue wait alone
      // already exceeds the request's whole deadline, admitting it only
      // burns a queue slot on a guaranteed DEADLINE_EXCEEDED. Predict
      // with the recent-solve EWMA; before any solve finished (EWMA 0)
      // nothing is shed.
      if (request.deadline_ms > 0) {
        const uint64_t ewma = ewma_solve_ns_.load(std::memory_order_relaxed);
        const uint64_t predicted_wait_ns =
            queue_->size() * ewma / num_workers_;
        if (predicted_wait_ns / 1000000 >
            static_cast<uint64_t>(request.deadline_ms)) {
          rejected_overloaded_->Increment();
          session->Write(
              FrameType::kError,
              EncodeError(request.id, ServeError::kOverloaded,
                          "overloaded: predicted queue wait exceeds the "
                          "request deadline"));
          return true;
        }
      }
      Job job;
      job.request_id = request.id;
      job.scenario_text = std::move(request.scenario_text);
      job.session = session;
      job.enqueue_ns = NowNs();
      job.deadline_ms = request.deadline_ms;
      job.cancel = std::make_shared<CancellationToken>();
      if (request.deadline_ms > 0) {
        job.cancel->SetDeadlineAfter(
            std::chrono::milliseconds(request.deadline_ms));
      }
      // Register before TryPush: once the job is in the queue a CANCEL
      // may race ahead of this thread, and it must find the token.
      const InFlightKey key(session.get(), request.id);
      {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        inflight_[key] = InFlight{job.cancel, session};
      }
      const uint64_t lane = reinterpret_cast<uintptr_t>(session.get());
      switch (queue_->TryPush(lane, std::move(job))) {
        case FairQueue<Job>::PushResult::kOk:
          accepted_->Increment();
          queue_depth_->Set(static_cast<int64_t>(queue_->size()));
          return true;
        case FairQueue<Job>::PushResult::kFull:
          // Admission control: reject-with-status, never block the
          // connection. Clients retry; the connection stays healthy.
          UnregisterInFlight(session.get(), request.id);
          rejected_full_->Increment();
          session->Write(FrameType::kError,
                         EncodeError(request.id, ServeError::kQueueFull,
                                     "scenario queue is full"));
          return true;
        case FairQueue<Job>::PushResult::kClosed:
          UnregisterInFlight(session.get(), request.id);
          rejected_draining_->Increment();
          session->Write(FrameType::kError,
                         EncodeError(request.id,
                                     ServeError::kShuttingDown,
                                     "server is draining"));
          return true;
      }
      return true;
    }
    case FrameType::kCancel: {
      uint64_t cancel_id = 0;
      if (!DecodeCancel(frame.payload, &cancel_id)) {
        protocol_errors_->Increment();
        session->Write(FrameType::kError,
                       EncodeError(0, ServeError::kBadFrame,
                                   "malformed CANCEL payload"));
        return false;
      }
      // Trip the token and nothing else: the worker discovers the stopped
      // token — at pop for queued jobs, at the next poll mid-solve — and
      // answers with the typed CANCELED error, which doubles as the ack.
      // No queue surgery, so queued and running requests cancel the same
      // way. An id that is not in flight (finished, rejected, or never
      // seen) is a client-visible soft error, not a connection fault.
      bool found = false;
      {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        auto it = inflight_.find(InFlightKey(session.get(), cancel_id));
        if (it != inflight_.end()) {
          it->second.token->RequestStop(
              CancellationToken::StopReason::kCanceled);
          found = true;
        }
      }
      if (!found) {
        session->Write(FrameType::kError,
                       EncodeError(cancel_id, ServeError::kUnknownRequest,
                                   "no such request in flight"));
      }
      return true;
    }
    case FrameType::kPing:
      return session->Write(FrameType::kPong, "").ok();
    case FrameType::kStatsReq:
      engine_->PublishPoolTelemetry();
      return session
          ->Write(FrameType::kStats, EncodeStats(stats_->ToJson()))
          .ok();
    case FrameType::kShutdown:
      // Graceful drain, synchronously on this session's thread: queued
      // scenarios finish and stream out, the final checkpoint is
      // written, then — only then — the requester gets its BYE.
      Drain();
      session->Write(FrameType::kBye, "");
      return false;
    default:
      protocol_errors_->Increment();
      session->Write(
          FrameType::kError,
          EncodeError(0, ServeError::kUnknownType,
                      "unexpected frame type " +
                          std::to_string(static_cast<unsigned>(
                              static_cast<uint8_t>(frame.type)))));
      return false;
  }
}

void ExchangeServer::WorkerLoop() {
  Job job;
  while (queue_->Pop(&job)) {
    queue_depth_->Set(static_cast<int64_t>(queue_->size()));
    queue_wait_ns_->Record(NowNs() - job.enqueue_ns);
    if (options_.worker_hook_for_test) options_.worker_hook_for_test();

    // Answers with the typed interruption error for this job's token and
    // retires the job. stop_requested() self-trips a lapsed deadline, so
    // even a request whose deadline expired while queued (watchdog not
    // yet ticked) reports DEADLINE_EXCEEDED here, not a stale solve.
    auto reply_interrupted = [&]() {
      const bool deadline = job.cancel->reason() ==
                            CancellationToken::StopReason::kDeadline;
      if (deadline) {
        deadline_exceeded_->Increment();
      } else {
        canceled_->Increment();
      }
      job.session->Write(
          FrameType::kError,
          EncodeError(job.request_id,
                      deadline ? ServeError::kDeadlineExceeded
                               : ServeError::kCanceled,
                      deadline ? "deadline exceeded"
                               : "request canceled"));
      UnregisterInFlight(job.session.get(), job.request_id);
      job.session.reset();
      job.cancel.reset();
    };
    if (job.cancel != nullptr && job.cancel->stop_requested()) {
      reply_interrupted();  // canceled while queued: skip the solve
      continue;
    }

    Result<Scenario> scenario = ParseScenario(job.scenario_text);
    if (!scenario.ok()) {
      request_errors_->Increment();
      job.session->Write(
          FrameType::kError,
          EncodeError(job.request_id, ServeError::kParseError,
                      scenario.status().ToString()));
      UnregisterInFlight(job.session.get(), job.request_id);
      job.session.reset();
      continue;
    }
    const uint64_t solve_start_ns = NowNs();
    Result<ExchangeOutcome> outcome =
        engine_->Solve(*scenario, job.cancel.get());
    if (job.cancel != nullptr && job.cancel->stop_requested()) {
      // Interrupted mid-solve (CANCEL frame, lapsed deadline, or a dead
      // session): the partial outcome is discarded — a canceled request
      // never streams a result, only its typed error.
      reply_interrupted();
      continue;
    }
    if (!outcome.ok()) {
      request_errors_->Increment();
      job.session->Write(
          FrameType::kError,
          EncodeError(job.request_id, ServeError::kSolveFailed,
                      outcome.status().ToString()));
      UnregisterInFlight(job.session.get(), job.request_id);
      job.session.reset();
      continue;
    }
    // Completed solves (only — canceled ones are truncated and would drag
    // the estimate down) feed the overload shedder's latency EWMA.
    const uint64_t solve_ns = NowNs() - solve_start_ns;
    const uint64_t prev = ewma_solve_ns_.load(std::memory_order_relaxed);
    ewma_solve_ns_.store(prev == 0 ? solve_ns : (prev * 7 + solve_ns) / 8,
                         std::memory_order_relaxed);
    // Stream the result the moment this scenario finishes — completion
    // order, not request order; the id is the correlation. The payload
    // is the deterministic, timing-free outcome text: byte-identical to
    // what `gdx_cli batch` prints for the same scenario.
    std::string text =
        outcome->ToString(*scenario->universe, *scenario->alphabet);
    Status written = job.session->Write(
        FrameType::kResult, EncodeResult(job.request_id, text));
    completed_->Increment();
    request_ns_->Record(NowNs() - job.enqueue_ns);
    (void)written;  // client gone: its loss, the server moves on
    UnregisterInFlight(job.session.get(), job.request_id);
    job.session.reset();
    job.cancel.reset();
  }
}

void ExchangeServer::UnregisterInFlight(const void* session,
                                        uint64_t request_id) {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  inflight_.erase(InFlightKey(session, request_id));
}

void ExchangeServer::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  const auto interval =
      std::chrono::milliseconds(options_.watchdog_interval_ms);
  while (!stopping_.load(std::memory_order_relaxed)) {
    watchdog_cv_.wait_for(lock, interval, [this] {
      return stopping_.load(std::memory_order_relaxed);
    });
    if (stopping_.load(std::memory_order_relaxed)) break;
    // Sweep the in-flight registry: stop_requested() self-trips lapsed
    // deadlines (so even a solve stuck in a poll-free region is flagged
    // the moment anything looks), and requests whose session's read half
    // died are canceled — their reply has nowhere to go, so every further
    // cycle they'd burn is pure waste.
    std::lock_guard<std::mutex> inflight_lock(inflight_mutex_);
    for (auto& entry : inflight_) {
      InFlight& inflight = entry.second;
      if (inflight.token->stop_requested()) continue;
      if (inflight.session->read_closed.load(std::memory_order_acquire)) {
        inflight.token->RequestStop(
            CancellationToken::StopReason::kCanceled);
      }
    }
  }
}

void ExchangeServer::CheckpointLoop() {
  std::unique_lock<std::mutex> lock(checkpoint_mutex_);
  const auto interval =
      std::chrono::milliseconds(options_.checkpoint_interval_ms);
  while (!stopping_.load(std::memory_order_relaxed)) {
    checkpoint_cv_.wait_for(lock, interval, [this] {
      return stopping_.load(std::memory_order_relaxed);
    });
    if (stopping_.load(std::memory_order_relaxed)) break;
    if (SaveCheckpoint().ok()) {
      checkpoint_saves_->Increment();
    } else {
      // A failed save (disk trouble, injected fault) costs this interval's
      // checkpoint, nothing else: the previous one is still intact and
      // the next tick retries.
      checkpoint_failures_->Increment();
    }
  }
}

Status ExchangeServer::SaveCheckpoint() const {
  // Write-then-rename: a crash mid-write leaves the previous checkpoint
  // intact, so the restart path always sees a complete snapshot (the
  // decoder would reject a torn one anyway — this avoids even that).
  const std::string tmp = options_.checkpoint_path + ".tmp";
  // Fault point (ISSUE 8): the snapshot write dies mid-file. Unlink the
  // tmp so the injected failure looks like a crash, not a stale partial.
  if (fault::ShouldFail(fault::Point::kCheckpointWrite)) {
    ::unlink(tmp.c_str());
    return Status::Internal("serve: checkpoint write: fault injected");
  }
  Status written = engine_->SaveWarmState(tmp);
  if (!written.ok()) return written;
  // fsync before rename: otherwise a power cut can leave the *renamed*
  // file with unwritten pages — a torn checkpoint at the durable name.
  SyncPath(tmp.c_str(), /*directory=*/false);
  // Fault point (ISSUE 8): crash between write and rename.
  if (fault::ShouldFail(fault::Point::kCheckpointRename)) {
    ::unlink(tmp.c_str());
    return Status::Internal("serve: checkpoint rename: fault injected");
  }
  if (::rename(tmp.c_str(), options_.checkpoint_path.c_str()) != 0) {
    return Status::Internal(std::string("serve: checkpoint rename: ") +
                            std::strerror(errno));
  }
  // fsync the directory so the rename itself survives a crash.
  const size_t slash = options_.checkpoint_path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "."
                                 : options_.checkpoint_path.substr(0, slash);
  SyncPath(dir.empty() ? "/" : dir.c_str(), /*directory=*/true);
  return Status::Ok();
}

void ExchangeServer::Drain() {
  std::call_once(drain_once_, [this] {
    stopping_.store(true, std::memory_order_relaxed);

    // 1. No new connections: wake accept() (shutdown on a listening
    //    socket makes a blocked accept return) and join the loop.
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (accept_thread_.joinable()) accept_thread_.join();

    // 2. No new admissions; queued scenarios still drain through Pop.
    queue_->Close();

    // 3. Workers finish every admitted scenario and stream its result.
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }

    // 3b. The watchdog goes before the sessions' read halves are shut
    //     down (step 5): drain-closed reads must not read as client
    //     disconnects and cancel nothing — there is nothing left in
    //     flight anyway once the workers joined.
    watchdog_cv_.notify_all();
    if (watchdog_thread_.joinable()) watchdog_thread_.join();

    // 4. Final checkpoint, after the last solve's memos landed.
    checkpoint_cv_.notify_all();
    if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
    if (!options_.checkpoint_path.empty()) {
      if (SaveCheckpoint().ok()) {
        checkpoint_saves_->Increment();
      } else {
        checkpoint_failures_->Increment();
      }
    }

    // 5. Wake every blocked session read (write halves stay open: the
    //    shutdown requester still gets its BYE after this returns).
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      for (const auto& session : sessions_) session->ShutdownRead();
    }

    {
      std::lock_guard<std::mutex> lock(stopped_mutex_);
      stopped_ = true;
    }
    stopped_cv_.notify_all();
  });
}

void ExchangeServer::RequestStop() { Drain(); }

void ExchangeServer::Wait() {
  {
    std::unique_lock<std::mutex> lock(stopped_mutex_);
    stopped_cv_.wait(lock, [this] { return stopped_; });
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    threads.swap(session_threads_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace serve
}  // namespace gdx
