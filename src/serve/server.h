#ifndef GDX_SERVE_SERVER_H_
#define GDX_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/exchange_engine.h"
#include "obs/stats_registry.h"
#include "serve/bounded_queue.h"
#include "serve/protocol.h"

namespace gdx {
namespace serve {

/// Configuration of the resident exchange service (ISSUE 7 tentpole).
/// Exactly one of `socket_path` (AF_UNIX) and `port` (loopback TCP;
/// 0 = pick an ephemeral port, read it back via bound_port()) selects
/// the listener.
struct ServeOptions {
  std::string socket_path;
  int port = -1;

  /// Worker sessions sharing the one warm engine (and thus its sharded
  /// EngineCache). 0 = hardware concurrency.
  size_t num_workers = 2;
  /// Scenario queue bound: a request arriving with this many admitted-
  /// but-unfinished scenarios is rejected with ServeError::kQueueFull.
  size_t queue_capacity = 64;

  /// Background checkpointing (PR 4 snapshot format): every
  /// `checkpoint_interval_ms` the cache's warm state is written to
  /// `checkpoint_path` (tmp file + atomic rename), and once more on
  /// graceful drain. If the file already exists at startup the server
  /// warm-starts from it — so a killed and restarted server resumes
  /// from its latest checkpoint with the memos it had already earned.
  /// Empty = no checkpointing.
  std::string checkpoint_path;
  uint64_t checkpoint_interval_ms = 5000;

  /// Watchdog tick (ISSUE 8): how often the server sweeps its in-flight
  /// requests for lapsed deadlines and disconnected sessions. The sweep
  /// only *trips* cancellation tokens — the solve stages abort themselves
  /// at their next poll — so this bounds how stale a queued-but-doomed
  /// request can get, not the solve abort latency.
  uint64_t watchdog_interval_ms = 10;

  EngineOptions engine;

  /// Registry the serve.* metrics (and the engine's engine.* metrics)
  /// record into. Borrowed; when null the server owns a private one —
  /// either way kStatsReq answers with the registry's ToJson.
  obs::StatsRegistry* stats = nullptr;

  /// Test seam: when set, every worker invokes this after popping a
  /// scenario and before solving it. Tests block workers here to fill
  /// the queue deterministically and observe kQueueFull admissions.
  std::function<void()> worker_hook_for_test;
};

/// The resident exchange server: accepts connections on a unix or
/// loopback TCP socket, speaks the length-prefixed protocol of
/// serve/protocol.h (normative spec: docs/SERVING.md), and runs admitted
/// scenarios on a worker pool that shares one ExchangeEngine — so every
/// request after the first benefits from the engine's sharded warm cache
/// (chase artifacts, compiled automata, NRE and answer memos).
///
/// Results stream: each scenario's kResult frame is written the moment
/// its solve finishes, tagged with the client's request id (replies may
/// be reordered relative to requests; ids are the correlation). The
/// outcome text is ExchangeOutcome::ToString — deterministic and
/// timing-free, so a scenario's served bytes are identical to what a
/// one-shot `gdx_cli batch` run prints for it (the soak harness diffs
/// exactly that).
///
/// Lifecycle: Start() binds and spawns the accept loop, workers, and the
/// checkpoint thread; Wait() blocks until a drain finishes. A drain
/// (client kShutdown frame or RequestStop()) closes admissions, lets
/// queued scenarios finish and stream out, writes a final checkpoint,
/// then answers the shutdown requester with kBye and closes every
/// connection. The server never dies on malformed input: protocol
/// violations get a typed kError where the transport still permits, and
/// only that connection closes.
class ExchangeServer {
 public:
  explicit ExchangeServer(ServeOptions options);
  ~ExchangeServer();

  ExchangeServer(const ExchangeServer&) = delete;
  ExchangeServer& operator=(const ExchangeServer&) = delete;

  /// Binds the listener, warm-starts from the checkpoint when present,
  /// and spawns the service threads. Non-blocking.
  Status Start();

  /// Blocks until the server has fully drained (after a kShutdown frame
  /// or RequestStop()).
  void Wait();

  /// Initiates a graceful drain from outside a connection (e.g. a signal
  /// handler's thread). Idempotent; returns without waiting — pair with
  /// Wait().
  void RequestStop();

  /// The TCP port actually bound (after Start(); for port = 0 requests).
  int bound_port() const { return bound_port_; }

  const ExchangeEngine& engine() const { return *engine_; }
  obs::StatsRegistry& stats() { return *stats_; }

 private:
  struct Job {
    uint64_t request_id = 0;
    std::string scenario_text;
    /// Connection the result frame streams back to; shared so a session
    /// that dies early keeps the fd alive until its jobs finish.
    std::shared_ptr<class Session> session;
    uint64_t enqueue_ns = 0;
    /// Per-request cancellation token (ISSUE 8): carries the request's
    /// deadline and is tripped by CANCEL frames, the watchdog (lapsed
    /// deadline / disconnected session), or both. Shared with the
    /// in-flight registry so a cancel reaches the job wherever it is —
    /// still queued or mid-solve.
    std::shared_ptr<CancellationToken> cancel;
    uint32_t deadline_ms = 0;
  };

  /// In-flight registry entry: everything a CANCEL frame or a watchdog
  /// sweep needs to reach a request between admission and its reply.
  struct InFlight {
    std::shared_ptr<CancellationToken> token;
    std::shared_ptr<class Session> session;
  };
  /// Registry key: (session identity, client request id) — ids are only
  /// unique per connection, so CANCEL resolves within its own session.
  using InFlightKey = std::pair<const void*, uint64_t>;

  void AcceptLoop();
  void SessionLoop(std::shared_ptr<Session> session);
  void WorkerLoop();
  void CheckpointLoop();
  void WatchdogLoop();

  /// Handles one decoded frame on a session. Returns false when the
  /// connection must close (protocol violation or BYE).
  bool HandleFrame(const std::shared_ptr<Session>& session,
                   const Frame& frame);

  /// The drain sequence (runs at most once): stop admissions, drain the
  /// queue through the workers, final checkpoint, wake every session.
  void Drain();

  Status SaveCheckpoint() const;

  /// Removes (and returns) a request's registry entry; the worker calls
  /// this once per job, CANCEL lookups read under the same lock.
  void UnregisterInFlight(const void* session, uint64_t request_id);

  ServeOptions options_;
  std::unique_ptr<obs::StatsRegistry> owned_stats_;
  obs::StatsRegistry* stats_ = nullptr;
  std::unique_ptr<ExchangeEngine> engine_;
  std::unique_ptr<FairQueue<Job>> queue_;

  int listen_fd_ = -1;
  int bound_port_ = -1;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::thread checkpoint_thread_;
  std::mutex checkpoint_mutex_;
  std::condition_variable checkpoint_cv_;
  std::thread watchdog_thread_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;

  std::mutex inflight_mutex_;
  std::map<InFlightKey, InFlight> inflight_;

  /// EWMA of recent (non-canceled) solve latencies, for the overload
  /// shedder's queue-wait prediction. 0 until the first solve completes.
  std::atomic<uint64_t> ewma_solve_ns_{0};
  size_t num_workers_ = 1;

  std::mutex sessions_mutex_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::vector<std::thread> session_threads_;

  std::atomic<bool> stopping_{false};
  std::once_flag drain_once_;
  std::mutex stopped_mutex_;
  std::condition_variable stopped_cv_;
  bool stopped_ = false;

  // serve.* metric handles (registered once in Start()).
  obs::Counter* connections_ = nullptr;
  obs::Counter* accepted_ = nullptr;
  obs::Counter* rejected_full_ = nullptr;
  obs::Counter* rejected_draining_ = nullptr;
  obs::Counter* completed_ = nullptr;
  obs::Counter* request_errors_ = nullptr;
  obs::Counter* protocol_errors_ = nullptr;
  obs::Counter* canceled_ = nullptr;
  obs::Counter* deadline_exceeded_ = nullptr;
  obs::Counter* rejected_overloaded_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Counter* checkpoint_saves_ = nullptr;
  obs::Counter* checkpoint_restores_ = nullptr;
  obs::Counter* checkpoint_failures_ = nullptr;
  obs::Histogram* request_ns_ = nullptr;
  obs::Histogram* queue_wait_ns_ = nullptr;
};

}  // namespace serve
}  // namespace gdx

#endif  // GDX_SERVE_SERVER_H_
