#include "serve/protocol.h"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault.h"
#include "persist/wire.h"

namespace gdx {
namespace serve {

const char* ServeErrorName(ServeError code) {
  switch (code) {
    case ServeError::kNone: return "NONE";
    case ServeError::kVersionMismatch: return "VERSION_MISMATCH";
    case ServeError::kBadFrame: return "BAD_FRAME";
    case ServeError::kOversizedFrame: return "OVERSIZED_FRAME";
    case ServeError::kUnknownType: return "UNKNOWN_TYPE";
    case ServeError::kQueueFull: return "QUEUE_FULL";
    case ServeError::kParseError: return "PARSE_ERROR";
    case ServeError::kSolveFailed: return "SOLVE_FAILED";
    case ServeError::kShuttingDown: return "SHUTTING_DOWN";
    case ServeError::kNotReady: return "NOT_READY";
    case ServeError::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ServeError::kCanceled: return "CANCELED";
    case ServeError::kOverloaded: return "OVERLOADED";
    case ServeError::kUnknownRequest: return "UNKNOWN_REQUEST";
  }
  return "UNKNOWN";
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU8(static_cast<uint8_t>(kProtocolVersion));
  w.PutU8(0);
  w.PutU8(0);
  w.PutRaw(payload);
  return w.TakeBytes();
}

std::string EncodeHello(uint32_t version) {
  WireWriter w;
  w.PutU32(version);
  return w.TakeBytes();
}

bool DecodeHello(std::string_view payload, uint32_t* version) {
  WireReader r(payload);
  return r.ReadU32(version) && r.AtEnd();
}

std::string EncodeHelloAck(const HelloAck& ack) {
  WireWriter w;
  w.PutU32(ack.version);
  w.PutU32(ack.max_payload);
  w.PutU32(ack.queue_capacity);
  return w.TakeBytes();
}

bool DecodeHelloAck(std::string_view payload, HelloAck* ack) {
  WireReader r(payload);
  return r.ReadU32(&ack->version) && r.ReadU32(&ack->max_payload) &&
         r.ReadU32(&ack->queue_capacity) && r.AtEnd();
}

namespace {
/// Request flags: bit 0 = a u32 deadline_ms follows the flags word.
constexpr uint32_t kRequestFlagDeadline = 1u << 0;
}  // namespace

std::string EncodeRequest(uint64_t id, std::string_view scenario_text,
                          uint32_t deadline_ms) {
  WireWriter w;
  w.PutU64(id);
  w.PutU32(deadline_ms != 0 ? kRequestFlagDeadline : 0);
  if (deadline_ms != 0) w.PutU32(deadline_ms);
  w.PutBytes(scenario_text);
  return w.TakeBytes();
}

bool DecodeRequest(std::string_view payload, Request* out) {
  WireReader r(payload);
  std::string_view text;
  if (!r.ReadU64(&out->id) || !r.ReadU32(&out->flags)) return false;
  // Unknown flag bits are rejected so they stay usable for future
  // extensions (a v2 peer cannot silently drop semantics it never knew).
  if ((out->flags & ~kRequestFlagDeadline) != 0) return false;
  out->deadline_ms = 0;
  if ((out->flags & kRequestFlagDeadline) != 0) {
    if (!r.ReadU32(&out->deadline_ms)) return false;
    if (out->deadline_ms == 0) return false;  // flagged but absent
  }
  if (!r.ReadBytes(&text) || !r.AtEnd()) return false;
  out->scenario_text.assign(text.data(), text.size());
  return true;
}

std::string EncodeCancel(uint64_t id) {
  WireWriter w;
  w.PutU64(id);
  return w.TakeBytes();
}

bool DecodeCancel(std::string_view payload, uint64_t* id) {
  WireReader r(payload);
  return r.ReadU64(id) && r.AtEnd();
}

std::string EncodeResult(uint64_t id, std::string_view outcome_text) {
  WireWriter w;
  w.PutU64(id);
  w.PutBytes(outcome_text);
  return w.TakeBytes();
}

bool DecodeResult(std::string_view payload, uint64_t* id,
                  std::string* outcome_text) {
  WireReader r(payload);
  std::string_view text;
  if (!r.ReadU64(id) || !r.ReadBytes(&text) || !r.AtEnd()) return false;
  outcome_text->assign(text.data(), text.size());
  return true;
}

std::string EncodeError(uint64_t id, ServeError code,
                        std::string_view message) {
  WireWriter w;
  w.PutU64(id);
  w.PutU8(static_cast<uint8_t>(static_cast<uint16_t>(code) & 0xff));
  w.PutU8(static_cast<uint8_t>(static_cast<uint16_t>(code) >> 8));
  w.PutBytes(message);
  return w.TakeBytes();
}

bool DecodeError(std::string_view payload, uint64_t* id, ServeError* code,
                 std::string* message) {
  WireReader r(payload);
  uint8_t lo = 0, hi = 0;
  std::string_view text;
  if (!r.ReadU64(id) || !r.ReadU8(&lo) || !r.ReadU8(&hi) ||
      !r.ReadBytes(&text) || !r.AtEnd()) {
    return false;
  }
  *code = static_cast<ServeError>(static_cast<uint16_t>(lo) |
                                  (static_cast<uint16_t>(hi) << 8));
  message->assign(text.data(), text.size());
  return true;
}

std::string EncodeStats(std::string_view json) {
  WireWriter w;
  w.PutBytes(json);
  return w.TakeBytes();
}

bool DecodeStats(std::string_view payload, std::string* json) {
  WireReader r(payload);
  std::string_view text;
  if (!r.ReadBytes(&text) || !r.AtEnd()) return false;
  json->assign(text.data(), text.size());
  return true;
}

namespace {

/// Reads exactly `len` bytes. Returns the number of bytes read before EOF
/// (so 0 = clean EOF, len = success), or -1 on a hard error.
ssize_t ReadExact(int fd, char* buffer, size_t len) {
  // Fault point (ISSUE 8): a killed connection, as the reader sees it.
  if (fault::ShouldFail(fault::Point::kSocketRead)) {
    errno = ECONNRESET;
    return -1;
  }
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::recv(fd, buffer + done, len - done, 0);
    if (n == 0) break;  // EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    done += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

}  // namespace

Status WriteAll(int fd, std::string_view bytes) {
  // Fault point (ISSUE 8): a peer that vanished mid-write.
  if (fault::ShouldFail(fault::Point::kSocketWrite)) {
    return Status::NotFound("socket write failed: fault injected");
  }
  size_t done = 0;
  while (done < bytes.size()) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE, not a process
    // signal — a resident server must never die because one client left.
    ssize_t n = ::send(fd, bytes.data() + done, bytes.size() - done,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::NotFound(std::string("socket write failed: ") +
                              std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status WriteFrame(int fd, FrameType type, std::string_view payload) {
  return WriteAll(fd, EncodeFrame(type, payload));
}

Status ReadFrame(int fd, Frame* out, ServeError* wire_error) {
  if (wire_error != nullptr) *wire_error = ServeError::kNone;
  auto fail = [wire_error](ServeError code, Status status) {
    if (wire_error != nullptr) *wire_error = code;
    return status;
  };
  char header[kFrameHeaderSize];
  ssize_t got = ReadExact(fd, header, sizeof(header));
  if (got == 0) return Status::NotFound("eof");
  if (got < 0) {
    return Status::NotFound(std::string("socket read failed: ") +
                            std::strerror(errno));
  }
  if (static_cast<size_t>(got) < sizeof(header)) {
    return fail(ServeError::kBadFrame,
                Status::InvalidArgument("truncated frame header"));
  }
  WireReader r(std::string_view(header, sizeof(header)));
  uint32_t len = 0;
  uint8_t type = 0, version = 0, r0 = 0, r1 = 0;
  r.ReadU32(&len);
  r.ReadU8(&type);
  r.ReadU8(&version);
  r.ReadU8(&r0);
  r.ReadU8(&r1);
  if (version != kProtocolVersion) {
    return fail(
        ServeError::kVersionMismatch,
        Status::FailedPrecondition(
            "protocol version mismatch: frame has v" +
            std::to_string(version) + ", this side speaks v" +
            std::to_string(kProtocolVersion)));
  }
  if (r0 != 0 || r1 != 0) {
    return fail(ServeError::kBadFrame,
                Status::InvalidArgument(
                    "nonzero reserved bytes in frame header"));
  }
  if (len > kMaxFramePayload) {
    return fail(ServeError::kOversizedFrame,
                Status::InvalidArgument(
                    "oversized frame: payload of " + std::to_string(len) +
                    " bytes exceeds the " +
                    std::to_string(kMaxFramePayload) + "-byte cap"));
  }
  out->type = static_cast<FrameType>(type);
  out->payload.resize(len);
  if (len > 0) {
    got = ReadExact(fd, &out->payload[0], len);
    if (got < 0) {
      return Status::NotFound(std::string("socket read failed: ") +
                              std::strerror(errno));
    }
    if (static_cast<size_t>(got) < len) {
      return fail(ServeError::kBadFrame,
                  Status::InvalidArgument("truncated frame payload"));
    }
  }
  return Status::Ok();
}

}  // namespace serve
}  // namespace gdx
