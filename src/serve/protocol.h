#ifndef GDX_SERVE_PROTOCOL_H_
#define GDX_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace gdx {
namespace serve {

/// Wire protocol of the resident exchange service (ISSUE 7 tentpole).
/// docs/SERVING.md is the normative spec; scripts/check_docs.py fails CI
/// when the documented version and this constant drift apart (same
/// contract as kFormatVersion / docs/FORMAT.md).
///
/// Every frame is
///
///   u32 payload_len   little-endian, bytes after the 8-byte header
///   u8  type          FrameType
///   u8  version       kProtocolVersion (checked on every frame)
///   u16 reserved      must be 0
///   payload_len bytes of payload
///
/// The length prefix makes framing self-delimiting over a byte stream;
/// the per-frame version byte makes version mismatch detectable on any
/// frame, not just the handshake. Payload integers reuse the snapshot
/// format's little-endian wire primitives (src/persist/wire.h), so the
/// whole protocol is reimplementable from the two specs with no other
/// dependency — scripts/check_protocol.py does exactly that in Python.
/// v2 (ISSUE 8): REQUEST carries an optional deadline (flags bit 0 +
/// u32 deadline_ms), CANCEL aborts an in-flight request by id, and the
/// error space grows typed interruption/overload codes (10–13).
inline constexpr uint32_t kProtocolVersion = 2;

/// Frame header size in bytes (u32 len + u8 type + u8 version + u16 0).
inline constexpr size_t kFrameHeaderSize = 8;

/// Hard cap on a frame payload. A length prefix above this is rejected
/// *before* any allocation (typed error + connection close), so a garbage
/// or hostile length cannot balloon server memory.
inline constexpr uint32_t kMaxFramePayload = 16u << 20;  // 16 MiB

/// Frame types. Unknown types are rejected with ServeError::kUnknownType.
enum class FrameType : uint8_t {
  kHello = 0x01,     // client → server: u32 client protocol version
  kHelloAck = 0x02,  // server → client: u32 version, u32 max payload,
                     //                  u32 queue capacity
  kRequest = 0x03,   // client → server: u64 request id, u32 flags
                     //                  (bit 0: deadline present),
                     //                  [u32 deadline_ms if bit 0],
                     //                  bytes scenario text (.gdx format)
  kResult = 0x04,    // server → client: u64 request id,
                     //                  bytes deterministic outcome text
  kError = 0x05,     // server → client: u64 request id (0 = connection
                     //                  level), u16 ServeError code,
                     //                  bytes message
  kPing = 0x06,      // client → server: empty
  kPong = 0x07,      // server → client: empty
  kStatsReq = 0x08,  // client → server: empty
  kStats = 0x09,     // server → client: bytes telemetry JSON
                     //                  (docs/TELEMETRY.md schema)
  kShutdown = 0x0A,  // client → server: empty; starts graceful drain
  kBye = 0x0B,       // server → client: empty; drain finished, server
                     //                  exits after closing connections
  kCancel = 0x0C,    // client → server: u64 request id to abort. No direct
                     //                  ack: the canceled request's ERROR
                     //                  (CANCELED) is the acknowledgment.
                     //                  Unknown/finished ids answer
                     //                  UNKNOWN_REQUEST (non-fatal).
};

/// Typed error codes carried by kError frames (u16 on the wire).
enum class ServeError : uint16_t {
  kNone = 0,
  kVersionMismatch = 1,  // frame version != server version (fatal)
  kBadFrame = 2,         // header/payload malformed (fatal)
  kOversizedFrame = 3,   // payload_len > kMaxFramePayload (fatal)
  kUnknownType = 4,      // unrecognized FrameType (fatal)
  kQueueFull = 5,        // admission control rejected the request
  kParseError = 6,       // scenario text did not parse
  kSolveFailed = 7,      // engine returned a non-OK status
  kShuttingDown = 8,     // server is draining; request not admitted
  kNotReady = 9,         // request before HELLO handshake (fatal)
  kDeadlineExceeded = 10,  // the request's deadline lapsed before a
                           // complete result existed
  kCanceled = 11,          // aborted by a CANCEL frame or by the session
                           // disconnecting mid-solve
  kOverloaded = 12,        // load shed: predicted queue wait already
                           // exceeds the request's deadline
  kUnknownRequest = 13,    // CANCEL named an id that is not in flight
                           // (already answered, or never seen)
};

const char* ServeErrorName(ServeError code);

/// One decoded frame: type + raw payload bytes (owned).
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Encodes a frame (header + payload) into wire bytes.
std::string EncodeFrame(FrameType type, std::string_view payload);

// --- payload codecs --------------------------------------------------------
// Encoders return payload bytes for EncodeFrame; decoders are
// bounds-checked and return false on any malformation (short payload,
// trailing garbage).

std::string EncodeHello(uint32_t version = kProtocolVersion);
bool DecodeHello(std::string_view payload, uint32_t* version);

struct HelloAck {
  uint32_t version = kProtocolVersion;
  uint32_t max_payload = kMaxFramePayload;
  uint32_t queue_capacity = 0;
};
std::string EncodeHelloAck(const HelloAck& ack);
bool DecodeHelloAck(std::string_view payload, HelloAck* ack);

struct Request {
  uint64_t id = 0;
  uint32_t flags = 0;  // bit 0: deadline present; other bits must be 0
  /// Solve deadline in milliseconds from server receipt; 0 = none. On the
  /// wire it is present exactly when flags bit 0 is set (so v2 frames
  /// without a deadline are byte-identical to v1 modulo the version byte).
  uint32_t deadline_ms = 0;
  std::string scenario_text;
};
std::string EncodeRequest(uint64_t id, std::string_view scenario_text,
                          uint32_t deadline_ms = 0);
bool DecodeRequest(std::string_view payload, Request* out);

/// CANCEL payload: the u64 id of the request to abort.
std::string EncodeCancel(uint64_t id);
bool DecodeCancel(std::string_view payload, uint64_t* id);

std::string EncodeResult(uint64_t id, std::string_view outcome_text);
bool DecodeResult(std::string_view payload, uint64_t* id,
                  std::string* outcome_text);

std::string EncodeError(uint64_t id, ServeError code,
                        std::string_view message);
bool DecodeError(std::string_view payload, uint64_t* id, ServeError* code,
                 std::string* message);

std::string EncodeStats(std::string_view json);
bool DecodeStats(std::string_view payload, std::string* json);

// --- blocking socket I/O ---------------------------------------------------

/// Writes all of `bytes` to `fd` (retrying short writes, SIGPIPE
/// suppressed). Returns a non-OK status when the peer is gone.
Status WriteAll(int fd, std::string_view bytes);

/// Convenience: encode + write one frame.
Status WriteFrame(int fd, FrameType type, std::string_view payload);

/// Reads exactly one frame from `fd`. Validation order: header read in
/// full (clean EOF before any header byte reports kNotFound "eof"),
/// version byte checked, reserved bytes checked, length capped, then the
/// payload read in full. On a protocol-level failure the optional
/// `wire_error` receives the typed code to answer with
/// (kVersionMismatch / kOversizedFrame / kBadFrame; kNone for EOF and
/// transport errors) — the caller sends that error where the transport
/// still permits and closes the connection; the server itself never dies
/// on garbage input (scripts/check_protocol.py drives exactly these
/// paths).
Status ReadFrame(int fd, Frame* out, ServeError* wire_error = nullptr);

}  // namespace serve
}  // namespace gdx

#endif  // GDX_SERVE_PROTOCOL_H_
