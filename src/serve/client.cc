#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gdx {
namespace serve {

Status ExchangeClient::ConnectUnix(const std::string& socket_path) {
  Close();
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("client: socket path too long: " +
                                   socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("client: socket: ") +
                            std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::NotFound("client: connect " + socket_path +
                                     ": " + std::strerror(errno));
    Close();
    return status;
  }
  return Handshake();
}

Status ExchangeClient::ConnectTcp(int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("client: socket: ") +
                            std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status =
        Status::NotFound("client: connect port " + std::to_string(port) +
                         ": " + std::strerror(errno));
    Close();
    return status;
  }
  return Handshake();
}

Status ExchangeClient::Handshake() {
  Status sent = WriteFrame(fd_, FrameType::kHello, EncodeHello());
  if (!sent.ok()) return sent;
  Frame frame;
  Status read = ReadFrame(fd_, &frame);
  if (!read.ok()) return read;
  if (frame.type == FrameType::kError) {
    uint64_t id = 0;
    ServeError code = ServeError::kNone;
    std::string message;
    if (DecodeError(frame.payload, &id, &code, &message)) {
      return Status::FailedPrecondition(
          std::string("client: handshake rejected: ") +
          ServeErrorName(code) + ": " + message);
    }
    return Status::FailedPrecondition("client: handshake rejected");
  }
  if (frame.type != FrameType::kHelloAck ||
      !DecodeHelloAck(frame.payload, &ack_)) {
    return Status::InvalidArgument(
        "client: expected HELLO_ACK, got frame type " +
        std::to_string(static_cast<unsigned>(
            static_cast<uint8_t>(frame.type))));
  }
  if (ack_.version != kProtocolVersion) {
    return Status::FailedPrecondition(
        "client: server speaks protocol v" + std::to_string(ack_.version) +
        ", this client speaks v" + std::to_string(kProtocolVersion));
  }
  return Status::Ok();
}

Status ExchangeClient::SendRequest(uint64_t id,
                                   std::string_view scenario_text) {
  return WriteFrame(fd_, FrameType::kRequest,
                    EncodeRequest(id, scenario_text));
}

Status ExchangeClient::ReadReply(ClientReply* out) {
  Frame frame;
  Status read = ReadFrame(fd_, &frame);
  if (!read.ok()) return read;
  if (frame.type == FrameType::kResult) {
    out->is_error = false;
    out->code = ServeError::kNone;
    if (!DecodeResult(frame.payload, &out->id, &out->text)) {
      return Status::InvalidArgument("client: malformed RESULT payload");
    }
    return Status::Ok();
  }
  if (frame.type == FrameType::kError) {
    out->is_error = true;
    if (!DecodeError(frame.payload, &out->id, &out->code, &out->text)) {
      return Status::InvalidArgument("client: malformed ERROR payload");
    }
    return Status::Ok();
  }
  return Status::InvalidArgument(
      "client: expected RESULT or ERROR, got frame type " +
      std::to_string(
          static_cast<unsigned>(static_cast<uint8_t>(frame.type))));
}

Status ExchangeClient::ReadExpected(FrameType expected, Frame* frame) {
  Status read = ReadFrame(fd_, frame);
  if (!read.ok()) return read;
  if (frame->type != expected) {
    return Status::InvalidArgument(
        "client: expected frame type " +
        std::to_string(
            static_cast<unsigned>(static_cast<uint8_t>(expected))) +
        ", got " +
        std::to_string(
            static_cast<unsigned>(static_cast<uint8_t>(frame->type))));
  }
  return Status::Ok();
}

Status ExchangeClient::Ping() {
  Status sent = WriteFrame(fd_, FrameType::kPing, "");
  if (!sent.ok()) return sent;
  Frame frame;
  return ReadExpected(FrameType::kPong, &frame);
}

Status ExchangeClient::GetStats(std::string* json) {
  Status sent = WriteFrame(fd_, FrameType::kStatsReq, "");
  if (!sent.ok()) return sent;
  Frame frame;
  Status read = ReadExpected(FrameType::kStats, &frame);
  if (!read.ok()) return read;
  if (!DecodeStats(frame.payload, json)) {
    return Status::InvalidArgument("client: malformed STATS payload");
  }
  return Status::Ok();
}

Status ExchangeClient::Shutdown() {
  Status sent = WriteFrame(fd_, FrameType::kShutdown, "");
  if (!sent.ok()) return sent;
  Frame frame;
  return ReadExpected(FrameType::kBye, &frame);
}

void ExchangeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace serve
}  // namespace gdx
