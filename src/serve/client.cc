#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace gdx {
namespace serve {

Status ExchangeClient::ConnectUnix(const std::string& socket_path) {
  Close();
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("client: socket path too long: " +
                                   socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("client: socket: ") +
                            std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::NotFound("client: connect " + socket_path +
                                     ": " + std::strerror(errno));
    Close();
    return status;
  }
  return Handshake();
}

Status ExchangeClient::ConnectTcp(int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("client: socket: ") +
                            std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status =
        Status::NotFound("client: connect port " + std::to_string(port) +
                         ": " + std::strerror(errno));
    Close();
    return status;
  }
  return Handshake();
}

Status ExchangeClient::Handshake() {
  Status sent = WriteFrame(fd_, FrameType::kHello, EncodeHello());
  if (!sent.ok()) return sent;
  Frame frame;
  Status read = ReadFrame(fd_, &frame);
  if (!read.ok()) return read;
  if (frame.type == FrameType::kError) {
    uint64_t id = 0;
    ServeError code = ServeError::kNone;
    std::string message;
    if (DecodeError(frame.payload, &id, &code, &message)) {
      return Status::FailedPrecondition(
          std::string("client: handshake rejected: ") +
          ServeErrorName(code) + ": " + message);
    }
    return Status::FailedPrecondition("client: handshake rejected");
  }
  if (frame.type != FrameType::kHelloAck ||
      !DecodeHelloAck(frame.payload, &ack_)) {
    return Status::InvalidArgument(
        "client: expected HELLO_ACK, got frame type " +
        std::to_string(static_cast<unsigned>(
            static_cast<uint8_t>(frame.type))));
  }
  if (ack_.version != kProtocolVersion) {
    return Status::FailedPrecondition(
        "client: server speaks protocol v" + std::to_string(ack_.version) +
        ", this client speaks v" + std::to_string(kProtocolVersion));
  }
  return Status::Ok();
}

Status ExchangeClient::SendRequest(uint64_t id,
                                   std::string_view scenario_text,
                                   uint32_t deadline_ms) {
  return WriteFrame(fd_, FrameType::kRequest,
                    EncodeRequest(id, scenario_text, deadline_ms));
}

Status ExchangeClient::Cancel(uint64_t id) {
  return WriteFrame(fd_, FrameType::kCancel, EncodeCancel(id));
}

Status ExchangeClient::ReadReply(ClientReply* out) {
  Frame frame;
  Status read = ReadFrame(fd_, &frame);
  if (!read.ok()) return read;
  if (frame.type == FrameType::kResult) {
    out->is_error = false;
    out->code = ServeError::kNone;
    if (!DecodeResult(frame.payload, &out->id, &out->text)) {
      return Status::InvalidArgument("client: malformed RESULT payload");
    }
    return Status::Ok();
  }
  if (frame.type == FrameType::kError) {
    out->is_error = true;
    if (!DecodeError(frame.payload, &out->id, &out->code, &out->text)) {
      return Status::InvalidArgument("client: malformed ERROR payload");
    }
    return Status::Ok();
  }
  return Status::InvalidArgument(
      "client: expected RESULT or ERROR, got frame type " +
      std::to_string(
          static_cast<unsigned>(static_cast<uint8_t>(frame.type))));
}

Status ExchangeClient::ReadExpected(FrameType expected, Frame* frame) {
  Status read = ReadFrame(fd_, frame);
  if (!read.ok()) return read;
  if (frame->type != expected) {
    return Status::InvalidArgument(
        "client: expected frame type " +
        std::to_string(
            static_cast<unsigned>(static_cast<uint8_t>(expected))) +
        ", got " +
        std::to_string(
            static_cast<unsigned>(static_cast<uint8_t>(frame->type))));
  }
  return Status::Ok();
}

Status ExchangeClient::Ping() {
  Status sent = WriteFrame(fd_, FrameType::kPing, "");
  if (!sent.ok()) return sent;
  Frame frame;
  return ReadExpected(FrameType::kPong, &frame);
}

Status ExchangeClient::GetStats(std::string* json) {
  Status sent = WriteFrame(fd_, FrameType::kStatsReq, "");
  if (!sent.ok()) return sent;
  Frame frame;
  Status read = ReadExpected(FrameType::kStats, &frame);
  if (!read.ok()) return read;
  if (!DecodeStats(frame.payload, json)) {
    return Status::InvalidArgument("client: malformed STATS payload");
  }
  return Status::Ok();
}

Status ExchangeClient::Shutdown() {
  Status sent = WriteFrame(fd_, FrameType::kShutdown, "");
  if (!sent.ok()) return sent;
  Frame frame;
  return ReadExpected(FrameType::kBye, &frame);
}

void ExchangeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

uint64_t RetryBackoff::DelayUs(uint64_t key, uint64_t attempt) const {
  if (attempt == 0) return 0;
  // Overflow-safe capped doubling: base << (attempt-1), clamped to cap.
  uint64_t raw = cap_us_;
  if (attempt - 1 < 64) {
    const uint64_t shifted = base_us_ << (attempt - 1);
    // A wrapped shift reads as "shrunk below base": keep the cap then.
    raw = (shifted >> (attempt - 1)) == base_us_ ? std::min(shifted, cap_us_)
                                                 : cap_us_;
  }
  // Equal jitter from a SplitMix64 of (seed, key, attempt): deterministic
  // for a fixed seed, decorrelated across keys and attempts.
  uint64_t z = seed_ ^ (key * 0x9E3779B97F4A7C15ull) ^
               (attempt * 0xD1B54A32D192ED03ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  const uint64_t half = raw / 2;
  const uint64_t span = raw - half + 1;
  return half + z % span;
}

}  // namespace serve
}  // namespace gdx
