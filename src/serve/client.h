#ifndef GDX_SERVE_CLIENT_H_
#define GDX_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "serve/protocol.h"

namespace gdx {
namespace serve {

/// One reply frame, demultiplexed: a streamed result or a typed error.
/// Replies arrive in *completion* order; `id` correlates them with
/// requests.
struct ClientReply {
  uint64_t id = 0;
  bool is_error = false;
  ServeError code = ServeError::kNone;
  /// Result: the deterministic outcome text. Error: the server message.
  std::string text;
};

/// Blocking client of the resident exchange service (serve/protocol.h;
/// normative spec docs/SERVING.md). Connect* performs the HELLO /
/// HELLO_ACK version handshake; afterwards requests may be pipelined —
/// send as many as the admission window allows, then collect replies
/// with ReadReply. Not thread-safe: one client per thread.
class ExchangeClient {
 public:
  ExchangeClient() = default;
  ~ExchangeClient() { Close(); }
  ExchangeClient(const ExchangeClient&) = delete;
  ExchangeClient& operator=(const ExchangeClient&) = delete;

  Status ConnectUnix(const std::string& socket_path);
  Status ConnectTcp(int port);  // 127.0.0.1:port

  /// The server's handshake answer (valid after a successful Connect*).
  const HelloAck& server_ack() const { return ack_; }

  /// Queues one scenario (the `.gdx` text itself, not a path — the
  /// server has no filesystem dependency on the client). The reply
  /// arrives later via ReadReply; a kQueueFull error reply means
  /// "retry", not failure. `deadline_ms` > 0 attaches a solve deadline
  /// (v2): the server answers DEADLINE_EXCEEDED — or sheds with
  /// OVERLOADED up front — when it cannot finish in time.
  Status SendRequest(uint64_t id, std::string_view scenario_text,
                     uint32_t deadline_ms = 0);

  /// Aborts an in-flight request (v2 CANCEL). Fire-and-forget: the
  /// canceled request's ERROR reply (CANCELED) is the acknowledgment; if
  /// the id already finished, an UNKNOWN_REQUEST error reply arrives
  /// instead.
  Status Cancel(uint64_t id);

  /// Blocks for the next result-or-error reply.
  Status ReadReply(ClientReply* out);

  // Synchronous conveniences — call only with no replies outstanding
  // (they expect their own answer to be the next frame).
  Status Ping();
  Status GetStats(std::string* json);
  /// Requests a graceful drain and blocks until the server's BYE — by
  /// then every admitted scenario has finished and checkpointed.
  Status Shutdown();

  void Close();

 private:
  Status Handshake();
  Status ReadExpected(FrameType expected, Frame* frame);

  int fd_ = -1;
  HelloAck ack_;
};

/// Deterministic capped-exponential retry backoff with equal jitter
/// (ISSUE 8 satellite): delay for attempt k (1-based) is drawn uniformly
/// from [raw/2, raw] where raw = min(cap, base << (k-1)). The jitter is a
/// pure hash of (seed, key, attempt) — stateless and reproducible, so a
/// soak run with a fixed seed replays byte-identically, while distinct
/// keys (e.g. request ids) desynchronize: a burst of rejected clients
/// does not re-converge into a retry stampede.
class RetryBackoff {
 public:
  explicit RetryBackoff(uint64_t seed, uint64_t base_us = 250,
                        uint64_t cap_us = 50000)
      : seed_(seed), base_us_(base_us), cap_us_(cap_us) {}

  /// Microseconds to sleep before retry number `attempt` (1-based) of the
  /// work item identified by `key`.
  uint64_t DelayUs(uint64_t key, uint64_t attempt) const;

 private:
  uint64_t seed_;
  uint64_t base_us_;
  uint64_t cap_us_;
};

}  // namespace serve
}  // namespace gdx

#endif  // GDX_SERVE_CLIENT_H_
