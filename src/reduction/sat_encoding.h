#ifndef GDX_REDUCTION_SAT_ENCODING_H_
#define GDX_REDUCTION_SAT_ENCODING_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/universe.h"
#include "exchange/setting.h"
#include "graph/graph.h"
#include "relational/instance.h"
#include "sat/cnf.h"

namespace gdx {

/// Which target-constraint flavor to emit for the reduction.
enum class ReductionMode {
  kEgd,     // Theorem 4.1: egds (x, path, y) -> x = y
  kSameAs,  // Proposition 4.3: (x, path, y) -> (x, sameAs, y)
};

/// The complete output of the Theorem 4.1 construction for a CNF ρ:
/// Ω_ρ = (R_ρ, Σ_ρ, M_ρst, M_ρt) and I_ρ = {R1(c1), R2(c2)}.
///
///  - R_ρ = {R1/1, R2/1} (fixed source schema — query complexity!)
///  - Σ_ρ = {a, t1, f1, ..., tn, fn}
///  - M_ρst: R1(x) ∧ R2(y) → (x,a,y) ∧ (x, t1+f1, x) ∧ ... ∧ (x, tn+fn, x)
///  - M_ρt type (*):  (x, tj . fj . a, y) → x = y          (one per var)
///  - M_ρt type (**): (x, b1 . b2 . b3 . a, y) → x = y     (one per clause,
///        b_l = t_il for negative literals, f_il for positive ones — the
///        path spells the clause's falsifying valuation)
///
/// A solution for I_ρ under Ω_ρ exists iff ρ is satisfiable.
struct SatEncodedExchange {
  std::unique_ptr<Schema> source_schema;
  std::unique_ptr<Alphabet> alphabet;
  std::unique_ptr<Instance> instance;
  Setting setting;  // points into source_schema / alphabet

  Value c1, c2;
  SymbolId a = 0;
  std::vector<SymbolId> t_syms;  // t_1..t_n
  std::vector<SymbolId> f_syms;  // f_1..f_n

  CnfFormula formula;  // the encoded ρ
  ReductionMode mode = ReductionMode::kEgd;

  SatEncodedExchange() = default;
  SatEncodedExchange(SatEncodedExchange&&) = default;
  SatEncodedExchange& operator=(SatEncodedExchange&&) = default;
};

/// Builds Ω_ρ and I_ρ from a CNF (any clause width >= 1; the paper states
/// it for 3CNF). Constants c1, c2 are interned into `universe`.
Result<SatEncodedExchange> EncodeSatToSetting(const CnfFormula& rho,
                                              Universe& universe,
                                              ReductionMode mode);

/// Reads the valuation off a solution graph: v(x_i) = true iff c1 carries a
/// t_i self-loop (the proof's encoding). Returns nullopt if some variable
/// has no loop at all (not a solution shape).
std::optional<std::vector<bool>> DecodeGraphToValuation(
    const Graph& g, const SatEncodedExchange& enc);

/// The proof's "if" direction: the two-node graph G = ({c1, c2}, E) with
/// (c1, a, c2) and one t_i/f_i self-loop per variable according to the
/// valuation. If the valuation satisfies ρ, this is a solution.
Graph BuildValuationGraph(const SatEncodedExchange& enc,
                          const std::vector<bool>& valuation);

/// r_ρ = a · a, the query of Corollary 4.2: (c1,c2) ∈ cert_Ω(r_ρ, I_ρ) iff
/// ρ is unsatisfiable.
NrePtr Corollary42Query(const SatEncodedExchange& enc);

/// r'_ρ = sameAs, the query of Proposition 4.3 (use with kSameAs mode).
NrePtr Proposition43Query(const SatEncodedExchange& enc);

}  // namespace gdx

#endif  // GDX_REDUCTION_SAT_ENCODING_H_
