#include "reduction/sat_encoding.h"

#include <string>

namespace gdx {

Result<SatEncodedExchange> EncodeSatToSetting(const CnfFormula& rho,
                                              Universe& universe,
                                              ReductionMode mode) {
  if (rho.num_vars() <= 0) {
    return Status::InvalidArgument("formula must have at least one variable");
  }
  SatEncodedExchange enc;
  enc.formula = rho;
  enc.mode = mode;
  enc.source_schema = std::make_unique<Schema>();
  enc.alphabet = std::make_unique<Alphabet>();

  Result<RelationId> r1 = enc.source_schema->AddRelation("R1", 1);
  Result<RelationId> r2 = enc.source_schema->AddRelation("R2", 1);
  if (!r1.ok() || !r2.ok()) return Status::Internal("schema setup failed");

  enc.a = enc.alphabet->Intern("a");
  const int n = rho.num_vars();
  for (int i = 1; i <= n; ++i) {
    enc.t_syms.push_back(enc.alphabet->Intern("t" + std::to_string(i)));
    enc.f_syms.push_back(enc.alphabet->Intern("f" + std::to_string(i)));
  }

  enc.c1 = universe.MakeConstant("c1");
  enc.c2 = universe.MakeConstant("c2");
  enc.instance = std::make_unique<Instance>(enc.source_schema.get());
  Status st = enc.instance->AddFact(*r1, {enc.c1});
  if (st.ok()) st = enc.instance->AddFact(*r2, {enc.c2});
  if (!st.ok()) return st;

  enc.setting.source_schema = enc.source_schema.get();
  enc.setting.alphabet = enc.alphabet.get();

  // M_ρst: R1(x) ∧ R2(y) → (x,a,y) ∧ ⋀_i (x, t_i + f_i, x).
  StTgd tgd(enc.source_schema.get());
  VarId x = tgd.body.InternVar("x");
  VarId y = tgd.body.InternVar("y");
  tgd.body.AddAtom(RelAtom{*r1, {Term::Var(x)}});
  tgd.body.AddAtom(RelAtom{*r2, {Term::Var(y)}});
  tgd.head.push_back(
      CnreAtom{Term::Var(x), Nre::Symbol(enc.a), Term::Var(y)});
  for (int i = 0; i < n; ++i) {
    tgd.head.push_back(CnreAtom{
        Term::Var(x),
        Nre::Union(Nre::Symbol(enc.t_syms[i]), Nre::Symbol(enc.f_syms[i])),
        Term::Var(x)});
  }
  enc.setting.st_tgds.push_back(std::move(tgd));

  // Helper: emit either an egd or a sameAs constraint for a path body.
  auto emit_constraint = [&](const NrePtr& path) {
    if (mode == ReductionMode::kEgd) {
      TargetEgd egd;
      VarId ex = egd.body.InternVar("x");
      VarId ey = egd.body.InternVar("y");
      egd.body.AddAtom(Term::Var(ex), path, Term::Var(ey));
      egd.x1 = ex;
      egd.x2 = ey;
      enc.setting.egds.push_back(std::move(egd));
    } else {
      // Intern the sameAs label now: completion and solution checking run
      // on concurrent workers that only do const lookups (Alphabet::
      // FindSameAs), so the single-threaded build must register it.
      (void)enc.alphabet->SameAsSymbol();
      SameAsConstraint sac;
      VarId ex = sac.body.InternVar("x");
      VarId ey = sac.body.InternVar("y");
      sac.body.AddAtom(Term::Var(ex), path, Term::Var(ey));
      sac.x1 = ex;
      sac.x2 = ey;
      enc.setting.sameas.push_back(std::move(sac));
    }
  };

  // Type (*): (x, t_j . f_j . a, y) → x = y, for each variable j.
  for (int j = 0; j < n; ++j) {
    emit_constraint(
        Nre::Concat(Nre::Concat(Nre::Symbol(enc.t_syms[j]),
                                Nre::Symbol(enc.f_syms[j])),
                    Nre::Symbol(enc.a)));
  }

  // Type (**): one per clause, spelling its falsifying valuation.
  for (const Clause& clause : rho.clauses()) {
    if (clause.empty()) {
      return Status::InvalidArgument("empty clause in formula");
    }
    NrePtr path;
    for (Lit l : clause) {
      int var = l < 0 ? -l : l;
      // Negative literal ¬x_i falsified by v(x_i)=true  -> walk t_i;
      // positive literal  x_i falsified by v(x_i)=false -> walk f_i.
      NrePtr step = (l < 0) ? Nre::Symbol(enc.t_syms[var - 1])
                            : Nre::Symbol(enc.f_syms[var - 1]);
      path = (path == nullptr) ? step : Nre::Concat(path, step);
    }
    path = Nre::Concat(path, Nre::Symbol(enc.a));
    emit_constraint(path);
  }

  return enc;
}

std::optional<std::vector<bool>> DecodeGraphToValuation(
    const Graph& g, const SatEncodedExchange& enc) {
  const int n = enc.formula.num_vars();
  std::vector<bool> valuation(n + 1, false);
  for (int i = 0; i < n; ++i) {
    bool has_t = g.HasEdge(enc.c1, enc.t_syms[i], enc.c1);
    bool has_f = g.HasEdge(enc.c1, enc.f_syms[i], enc.c1);
    if (!has_t && !has_f) return std::nullopt;
    valuation[i + 1] = has_t;
  }
  return valuation;
}

Graph BuildValuationGraph(const SatEncodedExchange& enc,
                          const std::vector<bool>& valuation) {
  Graph g;
  g.AddEdge(enc.c1, enc.a, enc.c2);
  const int n = enc.formula.num_vars();
  for (int i = 0; i < n; ++i) {
    g.AddEdge(enc.c1, valuation[i + 1] ? enc.t_syms[i] : enc.f_syms[i],
              enc.c1);
  }
  return g;
}

NrePtr Corollary42Query(const SatEncodedExchange& enc) {
  return Nre::Concat(Nre::Symbol(enc.a), Nre::Symbol(enc.a));
}

NrePtr Proposition43Query(const SatEncodedExchange& enc) {
  // unique_ptr in a const struct still grants non-const access to the
  // pointee; interning "sameAs" is idempotent.
  return Nre::Symbol(enc.alphabet->SameAsSymbol());
}

}  // namespace gdx
