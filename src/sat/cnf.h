#ifndef GDX_SAT_CNF_H_
#define GDX_SAT_CNF_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace gdx {

/// A literal: +v for variable v, -v for its negation (v >= 1, DIMACS-style).
using Lit = int;

/// A clause: a disjunction of literals.
using Clause = std::vector<Lit>;

/// A propositional formula in conjunctive normal form. Variables are
/// numbered 1..num_vars (DIMACS convention).
class CnfFormula {
 public:
  CnfFormula() = default;
  explicit CnfFormula(int num_vars) : num_vars_(num_vars) {}

  int num_vars() const { return num_vars_; }
  void set_num_vars(int n) { num_vars_ = n; }

  /// Adds a clause; grows num_vars to cover its literals.
  void AddClause(Clause clause) {
    for (Lit l : clause) {
      int v = l < 0 ? -l : l;
      if (v > num_vars_) num_vars_ = v;
    }
    clauses_.push_back(std::move(clause));
  }

  const std::vector<Clause>& clauses() const { return clauses_; }
  size_t num_clauses() const { return clauses_.size(); }

  /// Evaluates under a total assignment (assignment[v] for v in 1..n;
  /// index 0 unused).
  bool Eval(const std::vector<bool>& assignment) const {
    for (const Clause& c : clauses_) {
      bool sat = false;
      for (Lit l : c) {
        int v = l < 0 ? -l : l;
        if ((l > 0) == assignment[v]) {
          sat = true;
          break;
        }
      }
      if (!sat) return false;
    }
    return true;
  }

  /// DIMACS "p cnf" serialization.
  std::string ToDimacs() const;

 private:
  int num_vars_ = 0;
  std::vector<Clause> clauses_;
};

/// Parses DIMACS CNF ("c" comments, "p cnf <vars> <clauses>" header,
/// zero-terminated clauses).
Result<CnfFormula> ParseDimacs(std::string_view text);

/// The paper's running 3CNF ρ0 = (x1 ∨ ¬x2 ∨ x3) ∧ (¬x1 ∨ x3 ∨ ¬x4)
/// (proof of Theorem 4.1), used across examples and tests.
CnfFormula Rho0();

}  // namespace gdx

#endif  // GDX_SAT_CNF_H_
