#ifndef GDX_SAT_GEN_H_
#define GDX_SAT_GEN_H_

#include "common/rng.h"
#include "sat/cnf.h"

namespace gdx {

/// Uniform random k-SAT: m clauses of k distinct variables with random
/// polarity. At m/n ≈ 4.26, random 3-SAT sits at its hardness phase
/// transition — the workload family for the Theorem 4.1 scaling benches.
CnfFormula RandomKSat(int num_vars, int num_clauses, int k, Rng& rng);

/// Random k-SAT with a planted satisfying assignment: each clause is
/// guaranteed at least one literal true under the hidden model. Always
/// satisfiable — the "yes" family.
CnfFormula PlantedKSat(int num_vars, int num_clauses, int k, Rng& rng);

/// Pigeonhole principle PHP(n+1, n): provably unsatisfiable, exponentially
/// hard for resolution-style solvers — the "no" family.
CnfFormula Pigeonhole(int holes);

}  // namespace gdx

#endif  // GDX_SAT_GEN_H_
