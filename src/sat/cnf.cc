#include "sat/cnf.h"

#include <sstream>

namespace gdx {

std::string CnfFormula::ToDimacs() const {
  std::ostringstream out;
  out << "p cnf " << num_vars_ << " " << clauses_.size() << "\n";
  for (const Clause& c : clauses_) {
    for (Lit l : c) out << l << " ";
    out << "0\n";
  }
  return out.str();
}

Result<CnfFormula> ParseDimacs(std::string_view text) {
  CnfFormula formula;
  std::istringstream in{std::string(text)};
  std::string line;
  bool saw_header = false;
  int declared_vars = 0;
  long declared_clauses = -1;
  Clause current;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      std::istringstream header(line);
      std::string p, cnf;
      header >> p >> cnf >> declared_vars >> declared_clauses;
      if (cnf != "cnf" || declared_vars < 0 || declared_clauses < 0) {
        return Status::InvalidArgument("malformed DIMACS header: " + line);
      }
      saw_header = true;
      formula.set_num_vars(declared_vars);
      continue;
    }
    std::istringstream body(line);
    Lit lit;
    while (body >> lit) {
      if (lit == 0) {
        formula.AddClause(current);
        current.clear();
      } else {
        current.push_back(lit);
      }
    }
  }
  if (!current.empty()) {
    return Status::InvalidArgument("DIMACS clause not zero-terminated");
  }
  if (!saw_header) {
    return Status::InvalidArgument("missing DIMACS 'p cnf' header");
  }
  if (declared_clauses >= 0 &&
      formula.num_clauses() != static_cast<size_t>(declared_clauses)) {
    return Status::InvalidArgument("DIMACS clause count mismatch");
  }
  return formula;
}

CnfFormula Rho0() {
  CnfFormula rho0(4);
  rho0.AddClause({1, -2, 3});
  rho0.AddClause({-1, 3, -4});
  return rho0;
}

}  // namespace gdx
