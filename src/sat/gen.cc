#include "sat/gen.h"

#include <algorithm>

namespace gdx {
namespace {

/// Picks k distinct variables from 1..n.
std::vector<int> PickVars(int num_vars, int k, Rng& rng) {
  std::vector<int> vars;
  while (static_cast<int>(vars.size()) < k) {
    int v = static_cast<int>(rng.UniformInt(1, num_vars));
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
    }
  }
  return vars;
}

}  // namespace

CnfFormula RandomKSat(int num_vars, int num_clauses, int k, Rng& rng) {
  CnfFormula formula(num_vars);
  for (int i = 0; i < num_clauses; ++i) {
    Clause clause;
    for (int v : PickVars(num_vars, k, rng)) {
      clause.push_back(rng.Bernoulli(0.5) ? v : -v);
    }
    formula.AddClause(std::move(clause));
  }
  return formula;
}

CnfFormula PlantedKSat(int num_vars, int num_clauses, int k, Rng& rng) {
  std::vector<bool> hidden(num_vars + 1);
  for (int v = 1; v <= num_vars; ++v) hidden[v] = rng.Bernoulli(0.5);
  CnfFormula formula(num_vars);
  for (int i = 0; i < num_clauses; ++i) {
    for (;;) {
      Clause clause;
      for (int v : PickVars(num_vars, k, rng)) {
        clause.push_back(rng.Bernoulli(0.5) ? v : -v);
      }
      bool satisfied = false;
      for (Lit l : clause) {
        int v = l < 0 ? -l : l;
        if ((l > 0) == hidden[v]) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) {
        formula.AddClause(std::move(clause));
        break;
      }
    }
  }
  return formula;
}

CnfFormula Pigeonhole(int holes) {
  // Variables p(i,j): pigeon i (1..holes+1) in hole j (1..holes).
  const int pigeons = holes + 1;
  auto var = [&](int pigeon, int hole) {
    return (pigeon - 1) * holes + hole;
  };
  CnfFormula formula(pigeons * holes);
  // Every pigeon sits somewhere.
  for (int i = 1; i <= pigeons; ++i) {
    Clause c;
    for (int j = 1; j <= holes; ++j) c.push_back(var(i, j));
    formula.AddClause(std::move(c));
  }
  // No two pigeons share a hole.
  for (int j = 1; j <= holes; ++j) {
    for (int i1 = 1; i1 <= pigeons; ++i1) {
      for (int i2 = i1 + 1; i2 <= pigeons; ++i2) {
        formula.AddClause({-var(i1, j), -var(i2, j)});
      }
    }
  }
  return formula;
}

}  // namespace gdx
