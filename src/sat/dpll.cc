#include "sat/dpll.h"

#include <algorithm>

namespace gdx {
namespace {

enum class VarState : uint8_t { kUnassigned, kTrue, kFalse };

struct Frame {
  std::vector<VarState> assignment;  // 1..n
  std::vector<Clause> clauses;       // simplified residual formula
};

/// Applies `lit` to the residual clause set: removes satisfied clauses and
/// deletes the falsified literal from the rest. Returns false on an empty
/// clause (conflict).
bool Assign(Frame& frame, Lit lit) {
  int v = lit < 0 ? -lit : lit;
  frame.assignment[v] = lit > 0 ? VarState::kTrue : VarState::kFalse;
  std::vector<Clause> next;
  next.reserve(frame.clauses.size());
  for (Clause& c : frame.clauses) {
    bool satisfied = false;
    for (Lit l : c) {
      if (l == lit) {
        satisfied = true;
        break;
      }
    }
    if (satisfied) continue;
    Clause reduced;
    reduced.reserve(c.size());
    for (Lit l : c) {
      if (l != -lit) reduced.push_back(l);
    }
    if (reduced.empty()) return false;  // conflict
    next.push_back(std::move(reduced));
  }
  frame.clauses = std::move(next);
  return true;
}

/// Unit propagation to fixpoint. Returns false on conflict.
bool Propagate(Frame& frame, SatResult::Stats& stats) {
  for (;;) {
    Lit unit = 0;
    for (const Clause& c : frame.clauses) {
      if (c.size() == 1) {
        unit = c[0];
        break;
      }
    }
    if (unit == 0) return true;
    ++stats.propagations;
    if (!Assign(frame, unit)) return false;
  }
}

/// Pure literal elimination: assigns literals whose complement never occurs.
void EliminatePureLiterals(Frame& frame, SatResult::Stats& stats) {
  for (;;) {
    const int n = static_cast<int>(frame.assignment.size()) - 1;
    std::vector<uint8_t> pos(n + 1, 0), neg(n + 1, 0);
    for (const Clause& c : frame.clauses) {
      for (Lit l : c) {
        if (l > 0) {
          pos[l] = 1;
        } else {
          neg[-l] = 1;
        }
      }
    }
    Lit pure = 0;
    for (int v = 1; v <= n; ++v) {
      if (frame.assignment[v] != VarState::kUnassigned) continue;
      if (pos[v] && !neg[v]) {
        pure = v;
        break;
      }
      if (neg[v] && !pos[v]) {
        pure = -v;
        break;
      }
    }
    if (pure == 0) return;
    ++stats.propagations;
    Assign(frame, pure);  // cannot conflict: complement absent
  }
}

/// MOMS-lite branching: variable occurring most in the shortest clauses.
Lit PickBranch(const Frame& frame, bool use_moms) {
  if (!frame.clauses.empty() && use_moms) {
    size_t min_len = SIZE_MAX;
    for (const Clause& c : frame.clauses) min_len = std::min(min_len, c.size());
    const int n = static_cast<int>(frame.assignment.size()) - 1;
    std::vector<uint32_t> count(n + 1, 0);
    for (const Clause& c : frame.clauses) {
      if (c.size() != min_len) continue;
      for (Lit l : c) ++count[l < 0 ? -l : l];
    }
    int best = 0;
    for (int v = 1; v <= n; ++v) {
      if (frame.assignment[v] == VarState::kUnassigned && count[v] > 0 &&
          (best == 0 || count[v] > count[best])) {
        best = v;
      }
    }
    if (best != 0) return best;
  }
  for (size_t v = 1; v < frame.assignment.size(); ++v) {
    if (frame.assignment[v] == VarState::kUnassigned) {
      return static_cast<Lit>(v);
    }
  }
  return 0;
}

struct DpllDriver {
  const DpllConfig& config;
  SatResult::Stats stats;
  bool budget_exhausted = false;

  bool Search(Frame frame, size_t depth, std::vector<VarState>* model_out) {
    stats.max_depth = std::max(stats.max_depth, depth);
    if (!Propagate(frame, stats)) {
      ++stats.conflicts;
      return false;
    }
    if (config.use_pure_literal) EliminatePureLiterals(frame, stats);
    if (frame.clauses.empty()) {
      *model_out = frame.assignment;
      return true;
    }
    Lit branch = PickBranch(frame, config.use_moms_heuristic);
    if (branch == 0) {
      ++stats.conflicts;
      return false;  // clauses remain but no unassigned vars: conflict
    }
    if (config.max_decisions != 0 && stats.decisions >= config.max_decisions) {
      budget_exhausted = true;
      return false;
    }
    if (config.cancel != nullptr &&
        config.cancel->load(std::memory_order_acquire)) {
      budget_exhausted = true;  // abort reads as "unknown", never UNSAT
      return false;
    }
    ++stats.decisions;
    {
      Frame positive = frame;
      if (Assign(positive, branch) &&
          Search(std::move(positive), depth + 1, model_out)) {
        return true;
      }
    }
    if (budget_exhausted) return false;
    Frame negative = std::move(frame);
    if (Assign(negative, -branch) &&
        Search(std::move(negative), depth + 1, model_out)) {
      return true;
    }
    if (!budget_exhausted) ++stats.conflicts;
    return false;
  }
};

}  // namespace

SatResult DpllSolver::Solve(const CnfFormula& formula) const {
  return SolveWithAssumptions(formula, {});
}

SatResult DpllSolver::SolveWithAssumptions(
    const CnfFormula& formula, const std::vector<Lit>& assumptions) const {
  SatResult result;
  Frame root;
  root.assignment.assign(formula.num_vars() + 1, VarState::kUnassigned);
  root.clauses = formula.clauses();
  // Empty clause => trivially unsat.
  for (const Clause& c : root.clauses) {
    if (c.empty()) return result;
  }
  for (Lit lit : assumptions) {
    int v = lit < 0 ? -lit : lit;
    if (v < 1 || v > formula.num_vars()) return result;  // malformed: unsat
    VarState want = lit > 0 ? VarState::kTrue : VarState::kFalse;
    if (root.assignment[v] != VarState::kUnassigned) {
      if (root.assignment[v] != want) return result;  // conflicting cubes
      continue;
    }
    if (!Assign(root, lit)) return result;  // cube refuted by propagation
  }
  DpllDriver driver{config_, {}, false};
  std::vector<VarState> model;
  bool sat = driver.Search(std::move(root), 0, &model);
  result.stats = driver.stats;
  result.satisfiable = sat;
  result.budget_exhausted = driver.budget_exhausted;
  if (sat) {
    result.model.assign(formula.num_vars() + 1, false);
    for (int v = 1; v <= formula.num_vars(); ++v) {
      result.model[v] = (model[v] == VarState::kTrue);
      // Unassigned variables (don't-cares) default to false.
    }
    // Assumptions hold in the reported model even when the residual search
    // never touched them (they were satisfied structurally).
    for (Lit lit : assumptions) {
      int v = lit < 0 ? -lit : lit;
      result.model[v] = lit > 0;
    }
  }
  return result;
}

std::vector<std::vector<bool>> DpllSolver::EnumerateModels(
    const CnfFormula& formula, size_t limit) const {
  std::vector<std::vector<bool>> models;
  CnfFormula working = formula;
  while (models.size() < limit) {
    SatResult r = Solve(working);
    if (!r.satisfiable) break;
    models.push_back(r.model);
    // Block this model.
    Clause blocker;
    for (int v = 1; v <= working.num_vars(); ++v) {
      blocker.push_back(r.model[v] ? -v : v);
    }
    working.AddClause(std::move(blocker));
  }
  return models;
}

bool BruteForceSatisfiable(const CnfFormula& formula) {
  const int n = formula.num_vars();
  std::vector<bool> assignment(n + 1, false);
  for (uint64_t bits = 0; bits < (1ull << n); ++bits) {
    for (int v = 1; v <= n; ++v) assignment[v] = (bits >> (v - 1)) & 1;
    if (formula.Eval(assignment)) return true;
  }
  return formula.num_clauses() == 0;
}

}  // namespace gdx
