#ifndef GDX_SAT_DPLL_H_
#define GDX_SAT_DPLL_H_

#include <vector>

#include "sat/cnf.h"

namespace gdx {

/// Result of a SAT call.
struct SatResult {
  bool satisfiable = false;
  /// True when the decision budget ran out before the search completed:
  /// `satisfiable == false` then means "unknown", NOT a proof of UNSAT.
  bool budget_exhausted = false;
  /// Model (assignment[v] for v in 1..n; index 0 unused) when satisfiable.
  std::vector<bool> model;

  struct Stats {
    size_t decisions = 0;
    size_t propagations = 0;
    size_t conflicts = 0;
    size_t max_depth = 0;
  } stats;
};

/// Configuration of the DPLL solver.
struct DpllConfig {
  bool use_pure_literal = true;
  /// Branch on the variable with most occurrences in shortest clauses
  /// (MOMS-lite) when true, else lowest-index unassigned variable.
  bool use_moms_heuristic = true;
  /// Hard cap on decisions; 0 = unlimited. Exceeding it returns UNSAT=false
  /// with exhausted=true semantics via Status in SolveWithBudget.
  size_t max_decisions = 0;
};

/// Davis–Putnam–Logemann–Loveland solver with unit propagation and optional
/// pure-literal elimination. Deterministic. Exact (complete) — used as the
/// ground-truth oracle for the Theorem 4.1 reduction and as the engine of
/// the SAT-backed existence solver.
class DpllSolver {
 public:
  explicit DpllSolver(DpllConfig config = {}) : config_(config) {}

  SatResult Solve(const CnfFormula& formula) const;

  /// Enumerates up to `limit` models (by blocking clauses); deterministic.
  std::vector<std::vector<bool>> EnumerateModels(const CnfFormula& formula,
                                                 size_t limit) const;

 private:
  DpllConfig config_;
};

/// Exhaustive truth-table check (tests only; 2^n assignments).
bool BruteForceSatisfiable(const CnfFormula& formula);

}  // namespace gdx

#endif  // GDX_SAT_DPLL_H_
