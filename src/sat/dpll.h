#ifndef GDX_SAT_DPLL_H_
#define GDX_SAT_DPLL_H_

#include <atomic>
#include <vector>

#include "sat/cnf.h"

namespace gdx {

/// Result of a SAT call.
struct SatResult {
  bool satisfiable = false;
  /// True when the decision budget ran out before the search completed:
  /// `satisfiable == false` then means "unknown", NOT a proof of UNSAT.
  bool budget_exhausted = false;
  /// Model (assignment[v] for v in 1..n; index 0 unused) when satisfiable.
  std::vector<bool> model;

  struct Stats {
    size_t decisions = 0;
    size_t propagations = 0;
    size_t conflicts = 0;
    size_t max_depth = 0;
  } stats;
};

/// Configuration of the DPLL solver.
struct DpllConfig {
  bool use_pure_literal = true;
  /// Branch on the variable with most occurrences in shortest clauses
  /// (MOMS-lite) when true, else lowest-index unassigned variable.
  bool use_moms_heuristic = true;
  /// Hard cap on decisions; 0 = unlimited. Exceeding it returns UNSAT=false
  /// with exhausted=true semantics via Status in SolveWithBudget.
  size_t max_decisions = 0;
  /// Optional cooperative cancellation (ISSUE 2): polled at every decision;
  /// when it reads true, the search aborts with budget_exhausted semantics
  /// ("unknown", never a wrong UNSAT). Borrowed; may be null.
  const std::atomic<bool>* cancel = nullptr;
};

/// Davis–Putnam–Logemann–Loveland solver with unit propagation and optional
/// pure-literal elimination. Deterministic. Exact (complete) — used as the
/// ground-truth oracle for the Theorem 4.1 reduction and as the engine of
/// the SAT-backed existence solver.
///
/// Solve is const and the solver holds no search state, so the
/// cube-and-conquer existence path gives each intra-solve worker its own
/// DpllSolver instance with zero sharing (ISSUE 2 tentpole).
class DpllSolver {
 public:
  explicit DpllSolver(DpllConfig config = {}) : config_(config) {}

  SatResult Solve(const CnfFormula& formula) const;

  /// Solve under assumption literals pinned before the search — the cube
  /// interface of cube-and-conquer: the assumptions carve one subcube of
  /// the assignment space; UNSAT here means "no model in this cube" only.
  /// An assumption conflicting with the formula (or another assumption)
  /// returns UNSAT immediately.
  SatResult SolveWithAssumptions(const CnfFormula& formula,
                                 const std::vector<Lit>& assumptions) const;

  /// Enumerates up to `limit` models (by blocking clauses); deterministic.
  std::vector<std::vector<bool>> EnumerateModels(const CnfFormula& formula,
                                                 size_t limit) const;

 private:
  DpllConfig config_;
};

/// Exhaustive truth-table check (tests only; 2^n assignments).
bool BruteForceSatisfiable(const CnfFormula& formula);

}  // namespace gdx

#endif  // GDX_SAT_DPLL_H_
