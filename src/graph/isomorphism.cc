#include "graph/isomorphism.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace gdx {
namespace {

/// Per-node degree signature: sorted (label, direction) multiset sizes.
/// Nodes can only map onto nodes with identical signatures.
std::map<std::pair<SymbolId, bool>, size_t> Signature(const Graph& g,
                                                      Value v) {
  std::map<std::pair<SymbolId, bool>, size_t> sig;
  for (const Edge& e : g.edges()) {
    if (e.src == v) ++sig[{e.label, false}];
    if (e.dst == v) ++sig[{e.label, true}];
  }
  return sig;
}

struct IsoSearcher {
  const Graph& a;
  const Graph& b;
  std::vector<Value> a_nulls;
  std::vector<Value> b_nulls;
  std::unordered_map<uint64_t, Value> mapping;  // a-null raw -> b node
  std::unordered_map<uint64_t, bool> used;      // b-null raw in image

  Value Image(Value v) const {
    if (v.is_constant()) return v;
    auto it = mapping.find(v.raw());
    return it == mapping.end() ? v : it->second;
  }

  /// Checks all edges of `a` incident to `just` whose endpoints are mapped.
  bool LocallyConsistent(Value just) const {
    for (const Edge& e : a.edges()) {
      if (e.src != just && e.dst != just) continue;
      Value s = e.src;
      Value d = e.dst;
      if (s.is_null() && mapping.count(s.raw()) == 0) continue;
      if (d.is_null() && mapping.count(d.raw()) == 0) continue;
      if (!b.HasEdge(Image(s), e.label, Image(d))) return false;
    }
    return true;
  }

  bool Search(size_t depth) {
    if (depth == a_nulls.size()) return true;
    Value v = a_nulls[depth];
    auto v_sig = Signature(a, v);
    for (Value candidate : b_nulls) {
      if (used.count(candidate.raw()) > 0) continue;
      if (Signature(b, candidate) != v_sig) continue;
      mapping[v.raw()] = candidate;
      used[candidate.raw()] = true;
      if (LocallyConsistent(v) && Search(depth + 1)) return true;
      mapping.erase(v.raw());
      used.erase(candidate.raw());
    }
    return false;
  }
};

}  // namespace

bool IsomorphicUpToNulls(const Graph& a, const Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  // Constants must coincide exactly, and every a-edge between constants
  // must exist in b (quick rejection; full check follows).
  IsoSearcher searcher{a, b, {}, {}, {}, {}};
  for (Value v : a.nodes()) {
    if (v.is_null()) {
      searcher.a_nulls.push_back(v);
    } else if (!b.HasNode(v)) {
      return false;
    }
  }
  for (Value v : b.nodes()) {
    if (v.is_null()) {
      searcher.b_nulls.push_back(v);
    } else if (!a.HasNode(v)) {
      return false;
    }
  }
  if (searcher.a_nulls.size() != searcher.b_nulls.size()) return false;
  for (const Edge& e : a.edges()) {
    if (e.src.is_constant() && e.dst.is_constant() &&
        !b.HasEdge(e.src, e.label, e.dst)) {
      return false;
    }
  }
  if (!searcher.Search(0)) return false;
  // The mapping preserves all a-edges; with equal edge counts and
  // injectivity it is necessarily surjective on edges too.
  for (const Edge& e : a.edges()) {
    if (!b.HasEdge(searcher.Image(e.src), e.label, searcher.Image(e.dst))) {
      return false;
    }
  }
  return true;
}

std::vector<Graph> DeduplicateUpToIsomorphism(std::vector<Graph> graphs) {
  std::vector<Graph> unique;
  for (Graph& g : graphs) {
    bool duplicate = false;
    for (const Graph& seen : unique) {
      if (IsomorphicUpToNulls(g, seen)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) unique.push_back(std::move(g));
  }
  return unique;
}

}  // namespace gdx
