#include "graph/graph.h"

#include <algorithm>
#include <sstream>

namespace gdx {

namespace {
const std::vector<Value>& EmptyValueList() {
  static const std::vector<Value>* empty = new std::vector<Value>();
  return *empty;
}

const std::vector<std::pair<Value, Value>>& EmptyPairList() {
  static const std::vector<std::pair<Value, Value>>* empty =
      new std::vector<std::pair<Value, Value>>();
  return *empty;
}

uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

void Graph::ReserveFor(size_t num_nodes, size_t num_edges) {
  nodes_.reserve(num_nodes);
  node_set_.reserve(num_nodes);
  edges_.reserve(num_edges);
  edge_set_.reserve(num_edges);
  // Adjacency maps hold at most one entry per edge endpoint.
  successors_.reserve(num_edges);
  predecessors_.reserve(num_edges);
}

void Graph::AddNode(Value v) {
  if (node_set_.insert(v.raw()).second) {
    nodes_.push_back(v);
    content_hash_valid_ = false;
    raw_signature_valid_ = false;
  }
}

bool Graph::AddEdge(Value src, SymbolId label, Value dst) {
  AddNode(src);
  AddNode(dst);
  EdgeKey key{src.raw(), label, dst.raw()};
  if (!edge_set_.insert(key).second) return false;
  edges_.push_back(Edge{src, label, dst});
  successors_[NodeLabelKey{src.raw(), label}].push_back(dst);
  predecessors_[NodeLabelKey{dst.raw(), label}].push_back(src);
  label_index_[label].emplace_back(src, dst);
  content_hash_valid_ = false;
  raw_signature_valid_ = false;
  return true;
}

bool Graph::HasEdge(Value src, SymbolId label, Value dst) const {
  return edge_set_.count(EdgeKey{src.raw(), label, dst.raw()}) > 0;
}

const std::vector<Value>& Graph::Successors(Value v, SymbolId a) const {
  auto it = successors_.find(NodeLabelKey{v.raw(), a});
  return it == successors_.end() ? EmptyValueList() : it->second;
}

const std::vector<Value>& Graph::Predecessors(Value v, SymbolId a) const {
  auto it = predecessors_.find(NodeLabelKey{v.raw(), a});
  return it == predecessors_.end() ? EmptyValueList() : it->second;
}

const std::vector<std::pair<Value, Value>>& Graph::EdgesWithLabel(
    SymbolId a) const {
  auto it = label_index_.find(a);
  return it == label_index_.end() ? EmptyPairList() : it->second;
}

std::pair<uint64_t, uint64_t> Graph::ContentHash() const {
  if (content_hash_valid_) return content_hash_;
  // Sum/xor of well-mixed per-element hashes: insertion-order independent,
  // and node/edge sets are duplicate-free so multiset effects cannot occur.
  uint64_t sum = 0x6a09e667f3bcc908ull + nodes_.size();
  uint64_t xr = 0xbb67ae8584caa73bull ^ (edges_.size() << 32);
  for (Value v : nodes_) {
    uint64_t h = Mix64(v.raw() + 0x9e3779b97f4a7c15ull);
    sum += h;
    xr ^= Mix64(h + 1);
  }
  for (const Edge& e : edges_) {
    uint64_t h = Mix64(e.src.raw());
    h = Mix64(h ^ (static_cast<uint64_t>(e.label) + 0x9e3779b97f4a7c15ull));
    h = Mix64(h ^ e.dst.raw());
    sum += h;
    xr ^= Mix64(h + 2);
  }
  content_hash_ = {sum, xr};
  content_hash_valid_ = true;
  return content_hash_;
}

const std::string& Graph::RawSignature() const {
  if (raw_signature_valid_) return raw_signature_;
  auto append_u64 = [](std::string& out, uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<char>(x & 0xff));
      x >>= 8;
    }
  };
  std::vector<std::string> parts;
  parts.reserve(nodes_.size() + edges_.size());
  for (Value v : nodes_) {
    std::string part(1, 'n');
    append_u64(part, v.raw());
    parts.push_back(std::move(part));
  }
  for (const Edge& e : edges_) {
    std::string part(1, 'e');
    append_u64(part, e.src.raw());
    append_u64(part, e.label);
    append_u64(part, e.dst.raw());
    parts.push_back(std::move(part));
  }
  std::sort(parts.begin(), parts.end());
  raw_signature_.clear();
  raw_signature_.reserve(32 + parts.size() * 25);
  auto [sum, xr] = ContentHash();
  append_u64(raw_signature_, sum);
  append_u64(raw_signature_, xr);
  append_u64(raw_signature_, nodes_.size());
  append_u64(raw_signature_, edges_.size());
  for (const std::string& part : parts) raw_signature_ += part;
  raw_signature_valid_ = true;
  return raw_signature_;
}

void Graph::Clear() {
  nodes_.clear();
  node_set_.clear();
  edges_.clear();
  edge_set_.clear();
  successors_.clear();
  predecessors_.clear();
  label_index_.clear();
  content_hash_valid_ = false;
  raw_signature_valid_ = false;
}

std::string Graph::ToString(const Universe& universe,
                            const Alphabet& alphabet) const {
  std::ostringstream out;
  out << "graph {" << num_nodes() << " nodes, " << num_edges()
      << " edges}\n";
  for (const Edge& e : edges_) {
    out << "  " << universe.NameOf(e.src) << " -" << alphabet.NameOf(e.label)
        << "-> " << universe.NameOf(e.dst) << "\n";
  }
  return out.str();
}

std::string Graph::Signature(const Universe& universe,
                             const Alphabet& alphabet) const {
  std::vector<std::string> parts;
  parts.reserve(edges_.size() + nodes_.size());
  for (const Edge& e : edges_) {
    parts.push_back(universe.NameOf(e.src) + "," +
                    alphabet.NameOf(e.label) + "," +
                    universe.NameOf(e.dst));
  }
  // Isolated nodes participate in the signature too.
  for (Value v : nodes_) {
    bool isolated = true;
    for (const Edge& e : edges_) {
      if (e.src == v || e.dst == v) {
        isolated = false;
        break;
      }
    }
    if (isolated) parts.push_back("node:" + universe.NameOf(v));
  }
  std::sort(parts.begin(), parts.end());
  std::ostringstream out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out << ";";
    out << parts[i];
  }
  return out.str();
}

}  // namespace gdx
