#include "graph/graph.h"

#include <algorithm>
#include <sstream>

namespace gdx {

namespace {
const std::vector<Value>& EmptyValueList() {
  static const std::vector<Value>* empty = new std::vector<Value>();
  return *empty;
}
}  // namespace

void Graph::AddNode(Value v) {
  if (node_set_.insert(v.raw()).second) nodes_.push_back(v);
}

bool Graph::AddEdge(Value src, SymbolId label, Value dst) {
  AddNode(src);
  AddNode(dst);
  EdgeKey key{src.raw(), label, dst.raw()};
  if (!edge_set_.insert(key).second) return false;
  edges_.push_back(Edge{src, label, dst});
  successors_[NodeLabelKey{src.raw(), label}].push_back(dst);
  predecessors_[NodeLabelKey{dst.raw(), label}].push_back(src);
  return true;
}

bool Graph::HasEdge(Value src, SymbolId label, Value dst) const {
  return edge_set_.count(EdgeKey{src.raw(), label, dst.raw()}) > 0;
}

const std::vector<Value>& Graph::Successors(Value v, SymbolId a) const {
  auto it = successors_.find(NodeLabelKey{v.raw(), a});
  return it == successors_.end() ? EmptyValueList() : it->second;
}

const std::vector<Value>& Graph::Predecessors(Value v, SymbolId a) const {
  auto it = predecessors_.find(NodeLabelKey{v.raw(), a});
  return it == predecessors_.end() ? EmptyValueList() : it->second;
}

std::vector<std::pair<Value, Value>> Graph::EdgesWithLabel(SymbolId a) const {
  std::vector<std::pair<Value, Value>> out;
  for (const Edge& e : edges_) {
    if (e.label == a) out.emplace_back(e.src, e.dst);
  }
  return out;
}

void Graph::Clear() {
  nodes_.clear();
  node_set_.clear();
  edges_.clear();
  edge_set_.clear();
  successors_.clear();
  predecessors_.clear();
}

std::string Graph::ToString(const Universe& universe,
                            const Alphabet& alphabet) const {
  std::ostringstream out;
  out << "graph {" << num_nodes() << " nodes, " << num_edges()
      << " edges}\n";
  for (const Edge& e : edges_) {
    out << "  " << universe.NameOf(e.src) << " -" << alphabet.NameOf(e.label)
        << "-> " << universe.NameOf(e.dst) << "\n";
  }
  return out.str();
}

std::string Graph::Signature(const Universe& universe,
                             const Alphabet& alphabet) const {
  std::vector<std::string> parts;
  parts.reserve(edges_.size() + nodes_.size());
  for (const Edge& e : edges_) {
    parts.push_back(universe.NameOf(e.src) + "," +
                    alphabet.NameOf(e.label) + "," +
                    universe.NameOf(e.dst));
  }
  // Isolated nodes participate in the signature too.
  for (Value v : nodes_) {
    bool isolated = true;
    for (const Edge& e : edges_) {
      if (e.src == v || e.dst == v) {
        isolated = false;
        break;
      }
    }
    if (isolated) parts.push_back("node:" + universe.NameOf(v));
  }
  std::sort(parts.begin(), parts.end());
  std::ostringstream out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out << ";";
    out << parts[i];
  }
  return out.str();
}

}  // namespace gdx
