#include "graph/nre.h"

#include <vector>

namespace gdx {

NrePtr Nre::Epsilon() {
  return NrePtr(new Nre(Kind::kEpsilon, 0, nullptr, nullptr));
}
NrePtr Nre::Symbol(SymbolId a) {
  return NrePtr(new Nre(Kind::kSymbol, a, nullptr, nullptr));
}
NrePtr Nre::Inverse(SymbolId a) {
  return NrePtr(new Nre(Kind::kInverse, a, nullptr, nullptr));
}
NrePtr Nre::Union(NrePtr left, NrePtr right) {
  return NrePtr(
      new Nre(Kind::kUnion, 0, std::move(left), std::move(right)));
}
NrePtr Nre::Concat(NrePtr left, NrePtr right) {
  return NrePtr(
      new Nre(Kind::kConcat, 0, std::move(left), std::move(right)));
}
NrePtr Nre::Star(NrePtr child) {
  return NrePtr(new Nre(Kind::kStar, 0, std::move(child), nullptr));
}
NrePtr Nre::Nest(NrePtr child) {
  return NrePtr(new Nre(Kind::kNest, 0, std::move(child), nullptr));
}

bool Nre::Equals(const Nre& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kEpsilon:
      return true;
    case Kind::kSymbol:
    case Kind::kInverse:
      return symbol_ == other.symbol_;
    case Kind::kUnion:
    case Kind::kConcat:
      return left_->Equals(*other.left_) && right_->Equals(*other.right_);
    case Kind::kStar:
    case Kind::kNest:
      return left_->Equals(*other.left_);
  }
  return false;
}

size_t Nre::Size() const {
  switch (kind_) {
    case Kind::kEpsilon:
    case Kind::kSymbol:
    case Kind::kInverse:
      return 1;
    case Kind::kUnion:
    case Kind::kConcat:
      return 1 + left_->Size() + right_->Size();
    case Kind::kStar:
    case Kind::kNest:
      return 1 + left_->Size();
  }
  return 1;
}

bool Nre::Nullable() const {
  switch (kind_) {
    case Kind::kEpsilon:
    case Kind::kStar:
    case Kind::kNest:
      return true;
    case Kind::kSymbol:
    case Kind::kInverse:
      return false;
    case Kind::kUnion:
      return left_->Nullable() || right_->Nullable();
    case Kind::kConcat:
      return left_->Nullable() && right_->Nullable();
  }
  return false;
}

namespace {
// Precedence: union (1) < concat (2) < postfix star/inverse (3) < atoms (4).
constexpr int kPrecUnion = 1;
constexpr int kPrecConcat = 2;
constexpr int kPrecPostfix = 3;
}  // namespace

std::string Nre::ToStringPrec(const Alphabet& alphabet,
                              int parent_prec) const {
  std::string text;
  int prec = 4;
  switch (kind_) {
    case Kind::kEpsilon:
      text = "eps";
      break;
    case Kind::kSymbol:
      text = alphabet.NameOf(symbol_);
      break;
    case Kind::kInverse:
      text = alphabet.NameOf(symbol_) + "-";
      prec = kPrecPostfix;
      break;
    case Kind::kUnion:
      text = left_->ToStringPrec(alphabet, kPrecUnion) + " + " +
             right_->ToStringPrec(alphabet, kPrecUnion);
      prec = kPrecUnion;
      break;
    case Kind::kConcat:
      text = left_->ToStringPrec(alphabet, kPrecConcat) + " . " +
             right_->ToStringPrec(alphabet, kPrecConcat);
      prec = kPrecConcat;
      break;
    case Kind::kStar:
      text = left_->ToStringPrec(alphabet, kPrecPostfix + 1) + "*";
      prec = kPrecPostfix;
      break;
    case Kind::kNest:
      text = left_->ToStringPrec(alphabet, 0);
      text.insert(0, 1, '[');
      text.push_back(']');
      break;
  }
  if (prec < parent_prec) {
    text.insert(0, 1, '(');
    text.push_back(')');
  }
  return text;
}

std::string Nre::ToString(const Alphabet& alphabet) const {
  return ToStringPrec(alphabet, 0);
}

bool NreEquals(const NrePtr& a, const NrePtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return a->Equals(*b);
}

bool IsSingleSymbol(const NrePtr& nre) {
  return nre != nullptr && nre->kind() == Nre::Kind::kSymbol;
}

bool IsSymbolUnion(const NrePtr& nre, std::vector<SymbolId>* symbols) {
  if (nre == nullptr) return false;
  switch (nre->kind()) {
    case Nre::Kind::kSymbol:
      if (symbols != nullptr) symbols->push_back(nre->symbol());
      return true;
    case Nre::Kind::kUnion:
      return IsSymbolUnion(nre->left(), symbols) &&
             IsSymbolUnion(nre->right(), symbols);
    default:
      return false;
  }
}

bool IsSymbolConcat(const NrePtr& nre, std::vector<SymbolId>* symbols) {
  if (nre == nullptr) return false;
  switch (nre->kind()) {
    case Nre::Kind::kSymbol:
      if (symbols != nullptr) symbols->push_back(nre->symbol());
      return true;
    case Nre::Kind::kConcat:
      return IsSymbolConcat(nre->left(), symbols) &&
             IsSymbolConcat(nre->right(), symbols);
    default:
      return false;
  }
}

}  // namespace gdx
