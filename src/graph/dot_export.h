#ifndef GDX_GRAPH_DOT_EXPORT_H_
#define GDX_GRAPH_DOT_EXPORT_H_

#include <string>

#include "common/universe.h"
#include "graph/graph.h"
#include "pattern/pattern.h"

namespace gdx {

/// Options for GraphViz rendering.
struct DotOptions {
  std::string graph_name = "G";
  /// Render nulls as dashed circles (paper figures draw them hollow).
  bool distinguish_nulls = true;
  /// Render sameAs edges dotted (paper Figure 1(c)).
  bool dotted_sameas = true;
  bool rankdir_lr = true;
};

/// Renders a graph database in GraphViz DOT format; the paper's figures
/// (solutions, valuation graphs) are directly reproducible with this.
std::string ToDot(const Graph& g, const Universe& universe,
                  const Alphabet& alphabet, const DotOptions& options = {});

/// Renders a graph pattern: NRE edge labels are printed in full
/// (e.g. "f . f*"), nulls dashed — the paper's Figure 3/5 style.
std::string ToDot(const GraphPattern& pi, const Universe& universe,
                  const Alphabet& alphabet, const DotOptions& options = {});

}  // namespace gdx

#endif  // GDX_GRAPH_DOT_EXPORT_H_
