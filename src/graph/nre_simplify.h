#ifndef GDX_GRAPH_NRE_SIMPLIFY_H_
#define GDX_GRAPH_NRE_SIMPLIFY_H_

#include "graph/nre.h"

namespace gdx {

/// Bottom-up algebraic simplification of NREs. All rewrites preserve the
/// relation semantics ⟦r⟧_G on every graph (asserted by randomized
/// property tests against both evaluators):
///
///   ε·r = r·ε = r          r + r = r (structural)      ε* = ε
///   (r*)* = r*             (ε + r)* = r*               r + r* = r*
///   ε + r* = r*            r*·r* = r*                  [[r]] = [r]
///   [ε] = ε
///
/// Simplification shrinks chase outputs and speeds evaluation (see
/// bench_nre_eval's ablation); it never changes certain answers.
NrePtr SimplifyNre(const NrePtr& nre);

}  // namespace gdx

#endif  // GDX_GRAPH_NRE_SIMPLIFY_H_
