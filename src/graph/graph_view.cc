#include "graph/graph_view.h"

#include <algorithm>

namespace gdx {

GraphView::GraphView(const Graph& g)
    : graph_(&g), num_nodes_(g.num_nodes()) {
  const std::vector<Value>& nodes = g.nodes();
  id_of_.reserve(num_nodes_ * 2);
  for (uint32_t i = 0; i < num_nodes_; ++i) {
    id_of_.emplace(nodes[i].raw(), i);
  }

  const std::vector<Edge>& edges = g.edges();
  if (edges.empty()) return;
  SymbolId max_label = 0;
  for (const Edge& e : edges) max_label = std::max(max_label, e.label);
  slot_of_label_.assign(max_label + 1, kNoSlot);

  // Pass 1: assign label slots, resolve endpoint ids once per edge (the
  // fill pass reuses them — hashing is the expensive part of a build),
  // and count per-row degrees into the shared offsets array (shifted by
  // one so the prefix sum lands them in place).
  uint32_t num_slots = 0;
  for (const Edge& e : edges) {
    if (slot_of_label_[e.label] == kNoSlot) {
      slot_of_label_[e.label] = num_slots++;
    }
  }
  const size_t run = num_nodes_ + 1;
  offsets_.assign(size_t{num_slots} * 2 * run, 0);
  std::vector<std::pair<uint32_t, uint32_t>> edge_ids;
  edge_ids.reserve(edges.size());
  for (const Edge& e : edges) {
    const uint32_t slot = slot_of_label_[e.label];
    const uint32_t src = id_of_.find(e.src.raw())->second;
    const uint32_t dst = id_of_.find(e.dst.raw())->second;
    edge_ids.emplace_back(src, dst);
    ++offsets_[OffsetsBase(slot, 0) + src + 1];
    ++offsets_[OffsetsBase(slot, 1) + dst + 1];
  }
  // Global prefix sum: rows of consecutive runs are laid out back to back
  // in targets_, so one running sum over the whole offsets array works —
  // each run's leading slot already holds the previous run's end.
  uint32_t running = 0;
  for (size_t i = 0; i < offsets_.size(); ++i) {
    running += offsets_[i];
    offsets_[i] = running;
  }
  // Pass 2: fill rows with a cursor copy; per-row neighbor order is edge
  // insertion order (deterministic, mirrors Graph::Successors).
  targets_.resize(edges.size() * 2);
  std::vector<uint32_t> cursor(offsets_);
  for (size_t i = 0; i < edges.size(); ++i) {
    const uint32_t slot = slot_of_label_[edges[i].label];
    const auto [src, dst] = edge_ids[i];
    targets_[cursor[OffsetsBase(slot, 0) + src]++] = dst;
    targets_[cursor[OffsetsBase(slot, 1) + dst]++] = src;
  }
}

}  // namespace gdx
