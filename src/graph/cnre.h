#ifndef GDX_GRAPH_CNRE_H_
#define GDX_GRAPH_CNRE_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/term.h"
#include "graph/nre_eval.h"

namespace gdx {

/// One atom (x, r, y) of a conjunction of NREs: two terms joined by an NRE.
struct CnreAtom {
  Term x;
  NrePtr nre;
  Term y;
};

/// A target query: conjunction of nested regular expressions (CNRE, §2).
/// The paper's queries use variables only; constants are supported for
/// plugged-in bindings (solution checking). Head variables select output
/// columns; empty head = Boolean query.
class CnreQuery {
 public:
  VarId InternVar(std::string_view name) { return vars_.Intern(name); }
  const VarTable& vars() const { return vars_; }
  VarTable& vars() { return vars_; }

  /// Replaces the variable table wholesale — used when a dependency's head
  /// shares variable ids with its body's table.
  void SetVarTable(VarTable vars) { vars_ = std::move(vars); }

  void AddAtom(Term x, NrePtr nre, Term y) {
    atoms_.push_back(CnreAtom{x, std::move(nre), y});
  }
  const std::vector<CnreAtom>& atoms() const { return atoms_; }

  void SetHead(std::vector<VarId> head) { head_ = std::move(head); }
  const std::vector<VarId>& head() const { return head_; }

  size_t num_vars() const { return vars_.size(); }

 private:
  VarTable vars_;
  std::vector<CnreAtom> atoms_;
  std::vector<VarId> head_;
};

/// Partial assignment of CNRE variables to graph nodes.
using CnreBinding = std::vector<std::optional<Value>>;

/// Matcher with per-atom relations precomputed over one graph: build once,
/// run many (partial-binding) match enumerations. This is the workhorse of
/// solution checking, the egd chase and certain-answer computation.
/// Construction builds one GraphView CSR snapshot and evaluates every atom
/// against it (EvalOnView), so the per-graph indexing cost is paid once per
/// matcher — or once per *graph* when the caller passes a shared view.
class CnreMatcher {
 public:
  CnreMatcher(const CnreQuery* query, const Graph* graph,
              const NreEvaluator& eval);
  /// Shares a caller-owned view (solution checks build several matchers
  /// against one candidate graph). `view` must outlive the constructor
  /// call only; the matcher keeps no reference to it.
  CnreMatcher(const CnreQuery* query, const GraphView* view,
              const NreEvaluator& eval);
  ~CnreMatcher();
  CnreMatcher(CnreMatcher&&) noexcept;
  CnreMatcher& operator=(CnreMatcher&&) noexcept;

  /// Enumerates total matches extending `initial`; callback returns false
  /// to stop early. Deterministic order.
  void FindMatches(const CnreBinding& initial,
                   const std::function<bool(const CnreBinding&)>& callback)
      const;

  /// True if some match extends `initial`.
  bool Satisfiable(const CnreBinding& initial) const;

  const CnreQuery& query() const { return *query_; }

 private:
  struct Impl;
  const CnreQuery* query_;
  std::unique_ptr<Impl> impl_;
};

/// Enumerates all total matches of the query's atoms into `g`, extending
/// `initial` (pass {} for unconstrained evaluation). One-shot convenience
/// over CnreMatcher.
void FindCnreMatches(const CnreQuery& query, const Graph& g,
                     const NreEvaluator& eval, const CnreBinding& initial,
                     const std::function<bool(const CnreBinding&)>& callback);

/// The set of head tuples over all matches, duplicate-free.
std::vector<std::vector<Value>> EvaluateCnre(const CnreQuery& query,
                                             const Graph& g,
                                             const NreEvaluator& eval);

/// True if the query has a match extending `initial` (Boolean evaluation;
/// this is how s-t tgd heads are checked with bound frontier variables).
bool CnreSatisfiable(const CnreQuery& query, const Graph& g,
                     const NreEvaluator& eval, const CnreBinding& initial);

}  // namespace gdx

#endif  // GDX_GRAPH_CNRE_H_
