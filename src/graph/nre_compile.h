#ifndef GDX_GRAPH_NRE_COMPILE_H_
#define GDX_GRAPH_NRE_COMPILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/term.h"
#include "graph/nre.h"

namespace gdx {

class CompiledNre;
using CompiledNrePtr = std::shared_ptr<const CompiledNre>;

/// An NRE lowered once to an ε-free position NFA (ISSUE 3 tentpole part 2).
/// Compilation runs the Thompson construction, then eliminates every
/// ε-transition by folding ε-closures into the remaining *consuming*
/// transitions (edge-forward, edge-backward, nesting-test) and into
/// per-state accepting flags, and finally drops states unreachable from
/// the start — a Glushkov-style automaton of roughly one state per symbol
/// occurrence. Everything a product-graph traversal needs is precomputed:
///
///  * per-state consuming transitions, grouped by kind, duplicate-free;
///  * the reversed transition lists, so backward reachability (nesting-test
///    sets, the start-set prune) never rebuilds an "into" index;
///  * accepting flags (ε-paths to the accept state are compiled away);
///  * the nested-test sub-expressions, recursively compiled into
///    sub-automata — a compiled NRE is a self-contained evaluation plan.
///
/// Ownership and thread safety: instances are immutable after
/// construction and shared by-value as CompiledNrePtr
/// (shared_ptr<const>) — evaluators, the EngineCache compiled memo, and
/// every intra-solve worker hold the same plan concurrently without
/// synchronization. Compilation is deterministic: structurally equal
/// NREs (equal NreRawSignature) compile to bit-identical automata, which
/// is what lets racing cache publishers keep either result and lets a
/// persisted automaton (docs/FORMAT.md) substitute for a fresh compile.
class CompiledNre {
 public:
  /// One state's consuming transitions. In forward lists `.second` is
  /// the target state and each list is sorted by (payload, target) and
  /// duplicate-free; in reversed lists `.second` is the source state and
  /// entries appear in ascending-source order (the canonical reversal
  /// order DeriveReverse produces — NOT payload-sorted).
  struct State {
    std::vector<std::pair<uint32_t, uint32_t>> tests;  // (test_id, state)
    std::vector<std::pair<SymbolId, uint32_t>> fwd;    // consume a forward
    std::vector<std::pair<SymbolId, uint32_t>> bwd;    // consume a backward
  };

  static CompiledNrePtr Compile(const NrePtr& nre);

  /// Reassembles an automaton from serialized parts (the persistence
  /// subsystem's hook; see docs/FORMAT.md §"CAUT"). Every structural
  /// invariant the evaluator relies on is validated — state/test indices
  /// in range, canonical transition order, accepting flags 0/1, no null
  /// sub-automaton — and nullptr is returned on any violation, so a
  /// corrupted snapshot can never produce an automaton that walks out
  /// of bounds. The reversed transition lists are derived internally
  /// (they are redundant with the forward ones and are not part of the
  /// wire format). The returned plan is indistinguishable from a fresh
  /// Compile of the originating NRE.
  static CompiledNrePtr FromParts(uint32_t start, std::vector<State> states,
                                  std::vector<uint8_t> accepting,
                                  std::vector<CompiledNrePtr> tests);

  uint32_t start() const { return start_; }
  size_t num_states() const { return states_.size(); }
  bool Accepting(uint32_t state) const { return accepting_[state] != 0; }

  const State& Forward(uint32_t state) const { return states_[state]; }
  const State& Reverse(uint32_t state) const { return rstates_[state]; }

  /// Compiled sub-automata of the nesting tests, indexed by test_id.
  const std::vector<CompiledNrePtr>& tests() const { return tests_; }

 private:
  CompiledNre() = default;

  uint32_t start_ = 0;
  std::vector<State> states_;
  std::vector<State> rstates_;
  std::vector<uint8_t> accepting_;
  std::vector<CompiledNrePtr> tests_;
};

/// Appends `x` as 8 little-endian bytes — the one integer encoding every
/// engine memo key uses (NRE signatures, graph shapes, query structures).
/// Shared so the key byte formats cannot silently diverge.
void AppendRawU64(uint64_t x, std::string* out);

/// Appends the NRE's raw structural serialization — kind tags and symbol
/// ids only, no names, prefix-unambiguous. Structurally equal NREs produce
/// equal strings; this is the shared key material of the engine's NRE memo
/// and compiled-automaton cache.
void AppendNreRawSignature(const Nre& nre, std::string* out);
std::string NreRawSignature(const Nre& nre);

/// Appends a query term with a one-byte tag ('v' + var id, or 'c' + the
/// constant's raw encoding) — prefix-unambiguous. Shared key material of
/// the engine's answer memo and the chased-scenario memo.
void AppendTermRawSignature(const Term& term, std::string* out);

/// Source of compiled automata for evaluators. Implementations (the
/// engine's cache) share compilations across threads, candidate graphs and
/// scenarios; a null cache means "compile locally per call".
class CompiledNreCache {
 public:
  virtual ~CompiledNreCache() = default;
  virtual CompiledNrePtr GetOrCompile(const NrePtr& nre) = 0;
};

}  // namespace gdx

#endif  // GDX_GRAPH_NRE_COMPILE_H_
