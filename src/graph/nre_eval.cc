#include "graph/nre_eval.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <unordered_map>

#include "common/bitset.h"
#include "graph/graph_view.h"

namespace gdx {

namespace {

void SortByRaw(BinaryRelation& rel) {
  std::sort(rel.begin(), rel.end(), [](const NodePair& a, const NodePair& b) {
    if (a.first.raw() != b.first.raw()) return a.first.raw() < b.first.raw();
    return a.second.raw() < b.second.raw();
  });
}

// ---------------------------------------------------------------------------
// Legacy relation-algebra machinery (NaiveNreEvaluator): dense binary
// relations materialized per operator. Kept as the differential-test
// reference; the compiled evaluator below replaces it on the hot path.
// ---------------------------------------------------------------------------

/// Dense indexing of graph nodes for the algorithms below.
struct NodeIndex {
  explicit NodeIndex(const Graph& g) {
    nodes = g.nodes();
    for (uint32_t i = 0; i < nodes.size(); ++i) index[nodes[i].raw()] = i;
  }
  uint32_t Of(Value v) const { return index.at(v.raw()); }
  size_t size() const { return nodes.size(); }

  std::vector<Value> nodes;
  std::unordered_map<uint64_t, uint32_t> index;
};

/// Dense binary relation: sorted, unique (src_idx, dst_idx) pairs.
using DenseRel = std::vector<std::pair<uint32_t, uint32_t>>;

void SortUnique(DenseRel& rel) {
  std::sort(rel.begin(), rel.end());
  rel.erase(std::unique(rel.begin(), rel.end()), rel.end());
}

DenseRel UnionRel(const DenseRel& a, const DenseRel& b) {
  DenseRel out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

DenseRel ComposeRel(const DenseRel& a, const DenseRel& b, size_t n) {
  // Index b by source.
  std::vector<std::vector<uint32_t>> by_src(n);
  for (const auto& [s, d] : b) by_src[s].push_back(d);
  DenseRel out;
  for (const auto& [s, d] : a) {
    for (uint32_t d2 : by_src[d]) out.emplace_back(s, d2);
  }
  SortUnique(out);
  return out;
}

DenseRel IdentityRel(size_t n) {
  DenseRel out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) out.emplace_back(i, i);
  return out;
}

/// Reflexive-transitive closure of `rel` via BFS from every node.
DenseRel ReflexiveTransitiveClosure(const DenseRel& rel, size_t n) {
  std::vector<std::vector<uint32_t>> adj(n);
  for (const auto& [s, d] : rel) adj[s].push_back(d);
  DenseRel out;
  std::vector<uint32_t> stack;
  std::vector<bool> visited(n);
  for (uint32_t src = 0; src < n; ++src) {
    std::fill(visited.begin(), visited.end(), false);
    stack.assign(1, src);
    visited[src] = true;
    while (!stack.empty()) {
      uint32_t u = stack.back();
      stack.pop_back();
      out.emplace_back(src, u);
      for (uint32_t v : adj[u]) {
        if (!visited[v]) {
          visited[v] = true;
          stack.push_back(v);
        }
      }
    }
  }
  SortUnique(out);
  return out;
}

DenseRel EvalDense(const NrePtr& nre, const Graph& g, const NodeIndex& ix) {
  const size_t n = ix.size();
  switch (nre->kind()) {
    case Nre::Kind::kEpsilon:
      return IdentityRel(n);
    case Nre::Kind::kSymbol: {
      DenseRel out;
      for (const Edge& e : g.edges()) {
        if (e.label == nre->symbol()) {
          out.emplace_back(ix.Of(e.src), ix.Of(e.dst));
        }
      }
      SortUnique(out);
      return out;
    }
    case Nre::Kind::kInverse: {
      DenseRel out;
      for (const Edge& e : g.edges()) {
        if (e.label == nre->symbol()) {
          out.emplace_back(ix.Of(e.dst), ix.Of(e.src));
        }
      }
      SortUnique(out);
      return out;
    }
    case Nre::Kind::kUnion:
      return UnionRel(EvalDense(nre->left(), g, ix),
                      EvalDense(nre->right(), g, ix));
    case Nre::Kind::kConcat:
      return ComposeRel(EvalDense(nre->left(), g, ix),
                        EvalDense(nre->right(), g, ix), n);
    case Nre::Kind::kStar:
      return ReflexiveTransitiveClosure(EvalDense(nre->child(), g, ix), n);
    case Nre::Kind::kNest: {
      DenseRel child = EvalDense(nre->child(), g, ix);
      DenseRel out;
      uint32_t last = UINT32_MAX;
      for (const auto& [s, d] : child) {
        (void)d;
        if (s != last) {
          out.emplace_back(s, s);
          last = s;
        }
      }
      return out;  // already sorted/unique
    }
  }
  return {};
}

BinaryRelation ToValueRelation(const DenseRel& rel, const NodeIndex& ix) {
  BinaryRelation out;
  out.reserve(rel.size());
  for (const auto& [s, d] : rel) {
    out.emplace_back(ix.nodes[s], ix.nodes[d]);
  }
  SortByRaw(out);
  return out;
}

// ---------------------------------------------------------------------------
// Compiled product-graph BFS (ISSUE 3 tentpole part 3): CompiledNre × CSR
// GraphView, visited sets as flat 64-bit-word bitsets indexed node*q+state.
// The automaton is ε-free (closures folded in at compile time), so every
// BFS step consumes a graph edge or a nesting test — no ε bookkeeping.
// ---------------------------------------------------------------------------

/// Nodes v from which an accepting product path leaves — i.e. the *domain*
/// of ⟦r⟧: backward reachability from every accepting (node, state) pair
/// over the precompiled reverse transitions.
Bitset BackwardStartSet(const CompiledNre& nfa, const GraphView& view,
                        const std::vector<Bitset>& test_sets) {
  const size_t n = view.num_nodes();
  const size_t q = nfa.num_states();
  Bitset visited(n * q);
  std::vector<std::pair<uint32_t, uint32_t>> stack;
  auto push = [&](uint32_t v, uint32_t state) {
    if (visited.TestAndSet(v * q + state)) stack.emplace_back(v, state);
  };
  for (uint32_t s = 0; s < q; ++s) {
    if (!nfa.Accepting(s)) continue;
    for (uint32_t v = 0; v < n; ++v) push(v, s);
  }
  while (!stack.empty()) {
    const auto [v, state] = stack.back();
    stack.pop_back();
    const CompiledNre::State& rs = nfa.Reverse(state);
    for (const auto& [test_id, src_state] : rs.tests) {
      if (test_sets[test_id].Test(v)) push(v, src_state);
    }
    for (const auto& [sym, src_state] : rs.fwd) {
      // The transition consumed some edge u --sym--> v.
      for (uint32_t u : view.In(sym, v)) push(u, src_state);
    }
    for (const auto& [sym, src_state] : rs.bwd) {
      // The transition consumed an edge v --sym--> u traversed backwards.
      for (uint32_t u : view.Out(sym, v)) push(u, src_state);
    }
  }
  Bitset start_set(n);
  for (uint32_t v = 0; v < n; ++v) {
    if (visited.Test(v * q + nfa.start())) start_set.Set(v);
  }
  return start_set;
}

std::vector<Bitset> SolveTests(const CompiledNre& nfa,
                               const GraphView& view) {
  std::vector<Bitset> sets;
  sets.reserve(nfa.tests().size());
  for (const CompiledNrePtr& test : nfa.tests()) {
    std::vector<Bitset> sub_sets = SolveTests(*test, view);
    sets.push_back(BackwardStartSet(*test, view, sub_sets));
  }
  return sets;
}

// ---------------------------------------------------------------------------
// Scratch arena (ISSUE 10 satellite): every buffer a traversal needs,
// hoisted into one thread-local bundle so steady-state evaluation runs
// allocation-free — Bitset::Resize and vector::assign reuse capacity once
// the high-water mark is reached. Thread-local because intra-solve
// workers share one evaluator; each worker reuses its own arena.
// ---------------------------------------------------------------------------

std::atomic<uint64_t> g_scratch_grows{0};

struct EvalScratch {
  // Per-source product BFS.
  Bitset visited;
  Bitset accepting;
  std::vector<std::pair<uint32_t, uint32_t>> stack;
  // Batched multi-source BFS (word-indexed by state * n + node).
  Bitset reached;
  std::vector<uint64_t> cur_delta;
  std::vector<uint64_t> next_delta;
  std::vector<uint64_t> accept_mask;
  std::vector<std::pair<uint32_t, uint32_t>> cur_frontier;
  std::vector<std::pair<uint32_t, uint32_t>> next_frontier;
  // High-water marks (in bits / words) of the two buffer families.
  size_t visited_hw = 0;
  size_t batch_hw = 0;

  /// Records a capacity growth event when `need` exceeds `*hw`. The
  /// global counter is what NreEvalScratchAllocs() reports.
  static void Note(size_t* hw, size_t need) {
    if (need > *hw) {
      *hw = need;
      g_scratch_grows.fetch_add(1, std::memory_order_relaxed);
    }
  }
};

EvalScratch& LocalScratch() {
  static thread_local EvalScratch scratch;
  return scratch;
}

thread_local const CancellationToken* t_eval_cancel = nullptr;

/// Forward product BFS from (src, start); marks accepting nodes in
/// `accepting`. `visited` and `stack` are caller-owned scratch reused
/// across sources (reset here). When `stop_at` is a valid node id the
/// traversal returns true the moment that node accepts.
bool ForwardReach(const CompiledNre& nfa, const GraphView& view,
                  const std::vector<Bitset>& test_sets, uint32_t src,
                  Bitset& visited, Bitset& accepting,
                  std::vector<std::pair<uint32_t, uint32_t>>& stack,
                  uint32_t stop_at = GraphView::kInvalidNode) {
  const size_t q = nfa.num_states();
  visited.Reset();
  accepting.Reset();
  stack.clear();
  bool found = false;
  auto push = [&](uint32_t v, uint32_t state) {
    if (visited.TestAndSet(v * q + state)) {
      stack.emplace_back(v, state);
      if (nfa.Accepting(state)) {
        accepting.Set(v);
        if (v == stop_at) found = true;
      }
    }
  };
  push(src, nfa.start());
  while (!stack.empty() && !found) {
    const auto [v, state] = stack.back();
    stack.pop_back();
    const CompiledNre::State& fs = nfa.Forward(state);
    for (const auto& [test_id, to] : fs.tests) {
      if (test_sets[test_id].Test(v)) push(v, to);
    }
    for (const auto& [sym, to] : fs.fwd) {
      for (uint32_t w : view.Out(sym, v)) push(w, to);
    }
    for (const auto& [sym, to] : fs.bwd) {
      for (uint32_t w : view.In(sym, v)) push(w, to);
    }
  }
  return found;
}

// ---------------------------------------------------------------------------
// Bit-parallel multi-source product BFS (ISSUE 10 tentpole part 2).
//
// Layout: one 64-bit word per product cell, word index = state * n + node;
// bit i of the word means "source lane i reaches this (node, state)". A
// pass is round-based and level-synchronous: the frontier is the set of
// words whose mask grew last round, and expanding a frontier word relaxes
// each of its state's transitions with ONE word-wide OR/AND-NOT
// (Bitset::OrWordAt returns the newly-set lanes) — so up to 64 sources
// share every adjacency-row walk. Each (cell, lane) turns on exactly once,
// giving the same O(reach) frontier work as one per-source BFS, divided
// across the chunk.
// ---------------------------------------------------------------------------

/// Largest q * n (in words) the batched buffers may span; larger inputs
/// fall back to per-source BFS. 2^25 words = 256 MiB per buffer — a
/// million-node graph batches automata of up to 32 product states.
constexpr size_t kMaxBatchWords = size_t{1} << 25;

bool BatchFits(size_t n, size_t q) { return q <= kMaxBatchWords / n; }

/// One pass for up to 64 sources (dense node ids in srcs[0..count)).
/// Postcondition: scratch.accept_mask[v] bit i is set iff
/// (srcs[i], node v) ∈ ⟦r⟧. Polls the thread's ScopedEvalCancellation
/// token per round; a fired token leaves a truncated mask the caller
/// must not use (it checks the token itself).
void BatchedReach(const CompiledNre& nfa, const GraphView& view,
                  const std::vector<Bitset>& test_sets,
                  const uint32_t* srcs, size_t count, EvalScratch& s) {
  const size_t n = view.num_nodes();
  const size_t q = nfa.num_states();
  const size_t words = q * n;
  EvalScratch::Note(&s.batch_hw, words);
  s.reached.Resize(words * 64);
  s.cur_delta.assign(words, 0);
  s.next_delta.assign(words, 0);
  s.accept_mask.assign(n, 0);
  s.cur_frontier.clear();
  s.next_frontier.clear();

  const auto word_of = [n](uint32_t state, uint32_t node) {
    return size_t{state} * n + node;
  };
  // Seed: lane i starts at (srcs[i], start state).
  const uint32_t start = nfa.start();
  for (size_t i = 0; i < count; ++i) {
    const size_t w = word_of(start, srcs[i]);
    const uint64_t fresh = s.reached.OrWordAt(w, uint64_t{1} << i);
    if (fresh != 0) {
      if (s.cur_delta[w] == 0) s.cur_frontier.emplace_back(start, srcs[i]);
      s.cur_delta[w] |= fresh;
    }
  }

  const CancellationToken* cancel = t_eval_cancel;
  while (!s.cur_frontier.empty()) {
    if (cancel != nullptr && cancel->stop_requested()) return;
    s.next_frontier.clear();
    for (const auto& [state, v] : s.cur_frontier) {
      const size_t w = word_of(state, v);
      const uint64_t mask = s.cur_delta[w];
      s.cur_delta[w] = 0;
      const CompiledNre::State& fs = nfa.Forward(state);
      const auto relax = [&](uint32_t to, uint32_t node) {
        const size_t tw = word_of(to, node);
        const uint64_t fresh = s.reached.OrWordAt(tw, mask);
        if (fresh != 0) {
          if (s.next_delta[tw] == 0) s.next_frontier.emplace_back(to, node);
          s.next_delta[tw] |= fresh;
        }
      };
      for (const auto& [test_id, to] : fs.tests) {
        if (test_sets[test_id].Test(v)) relax(to, v);
      }
      for (const auto& [sym, to] : fs.fwd) {
        for (uint32_t u : view.Out(sym, v)) relax(to, u);
      }
      for (const auto& [sym, to] : fs.bwd) {
        for (uint32_t u : view.In(sym, v)) relax(to, u);
      }
    }
    s.cur_frontier.swap(s.next_frontier);
    s.cur_delta.swap(s.next_delta);
  }

  // Accepting lanes: any accepting state's row ORs into the node's mask.
  for (uint32_t state = 0; state < q; ++state) {
    if (!nfa.Accepting(state)) continue;
    const size_t base = size_t{state} * n;
    for (size_t v = 0; v < n; ++v) {
      s.accept_mask[v] |= s.reached.WordAt(base + v);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// NreEvaluator defaults
// ---------------------------------------------------------------------------

BinaryRelation NreEvaluator::EvalOnView(const NrePtr& nre,
                                        const GraphView& view) const {
  return Eval(nre, view.graph());
}

std::vector<Value> NreEvaluator::EvalFrom(const NrePtr& nre, const Graph& g,
                                          Value src) const {
  std::vector<Value> out;
  for (const NodePair& p : Eval(nre, g)) {
    if (p.first == src) out.push_back(p.second);
  }
  return out;
}

std::vector<std::vector<Value>> NreEvaluator::EvalFromMany(
    const NrePtr& nre, const Graph& g, const std::vector<Value>& srcs) const {
  std::vector<std::vector<Value>> out;
  out.reserve(srcs.size());
  for (Value src : srcs) out.push_back(EvalFrom(nre, g, src));
  return out;
}

bool NreEvaluator::Contains(const NrePtr& nre, const Graph& g, Value src,
                            Value dst) const {
  for (Value v : EvalFrom(nre, g, src)) {
    if (v == dst) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// ScopedEvalCancellation / scratch observability
// ---------------------------------------------------------------------------

ScopedEvalCancellation::ScopedEvalCancellation(const CancellationToken* cancel)
    : previous_(t_eval_cancel) {
  t_eval_cancel = cancel;
}

ScopedEvalCancellation::~ScopedEvalCancellation() {
  t_eval_cancel = previous_;
}

const CancellationToken* ScopedEvalCancellation::Current() {
  return t_eval_cancel;
}

uint64_t NreEvalScratchAllocs() {
  return g_scratch_grows.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// NaiveNreEvaluator
// ---------------------------------------------------------------------------

BinaryRelation NaiveNreEvaluator::Eval(const NrePtr& nre,
                                       const Graph& g) const {
  NodeIndex ix(g);
  return ToValueRelation(EvalDense(nre, g, ix), ix);
}

// ---------------------------------------------------------------------------
// AutomatonNreEvaluator (compiled)
// ---------------------------------------------------------------------------

CompiledNrePtr AutomatonNreEvaluator::GetCompiled(const NrePtr& nre) const {
  if (compile_cache_ != nullptr) return compile_cache_->GetOrCompile(nre);
  std::string key = NreRawSignature(*nre);
  {
    std::lock_guard<std::mutex> lock(memo_mutex_);
    auto it = local_memo_.find(key);
    if (it != local_memo_.end()) {
      // LRU touch (EngineCache semantics, ISSUE 10 satellite): a hit
      // moves the key to the recency front so hot automata outlive cap
      // pressure — the memo used to clear wholesale at the cap.
      local_lru_.splice(local_lru_.begin(), local_lru_, it->second.lru);
      return it->second.compiled;
    }
  }
  // Compile outside the lock; a racing worker's duplicate is discarded.
  CompiledNrePtr compiled = CompiledNre::Compile(nre);
  std::lock_guard<std::mutex> lock(memo_mutex_);
  auto it = local_memo_.find(key);
  if (it != local_memo_.end()) {
    // A racing worker published first: keep its entry (and touch it).
    local_lru_.splice(local_lru_.begin(), local_lru_, it->second.lru);
    return it->second.compiled;
  }
  local_lru_.push_front(key);
  local_memo_.emplace(std::move(key),
                      LocalMemoEntry{compiled, local_lru_.begin()});
  while (local_memo_.size() > local_memo_cap_ && !local_lru_.empty()) {
    local_memo_.erase(local_lru_.back());
    local_lru_.pop_back();
  }
  return compiled;
}

BinaryRelation AutomatonNreEvaluator::Eval(const NrePtr& nre,
                                           const Graph& g) const {
  GraphView view(g);
  return EvalOnView(nre, view);
}

BinaryRelation AutomatonNreEvaluator::EvalOnView(
    const NrePtr& nre, const GraphView& view) const {
  const size_t n = view.num_nodes();
  if (n == 0) return {};
  CompiledNrePtr nfa = GetCompiled(nre);
  const size_t q = nfa->num_states();
  std::vector<Bitset> test_sets = SolveTests(*nfa, view);
  // Only sources in the automaton's start set can produce pairs; prune
  // before fanning the forward BFS out. An accepting start state makes
  // every node its own witness — skip the backward pass.
  Bitset start_set(n);
  if (nfa->Accepting(nfa->start())) {
    for (uint32_t v = 0; v < n; ++v) start_set.Set(v);
  } else {
    start_set = BackwardStartSet(*nfa, view, test_sets);
  }
  BinaryRelation out;
  EvalScratch& s = LocalScratch();
  if (multi_source_mode_ == MultiSourceMode::kBatched && BatchFits(n, q)) {
    // 64 start-set sources per bit-parallel pass; pair emission order is
    // free — SortByRaw below canonicalizes, so the relation is
    // byte-identical to the per-source loop's.
    const CancellationToken* cancel = t_eval_cancel;
    std::vector<uint32_t> chunk;
    chunk.reserve(64);
    auto flush = [&] {
      if (chunk.empty()) return;
      if (cancel != nullptr && cancel->stop_requested()) return;
      BatchedReach(*nfa, view, test_sets, chunk.data(), chunk.size(), s);
      if (stats_sink_ != nullptr) {
        stats_sink_->RecordNreBatchPass(chunk.size());
      }
      for (uint32_t v = 0; v < n; ++v) {
        uint64_t mask = s.accept_mask[v];
        while (mask != 0) {
          const size_t lane = static_cast<size_t>(__builtin_ctzll(mask));
          out.emplace_back(view.NodeAt(chunk[lane]), view.NodeAt(v));
          mask &= mask - 1;
        }
      }
      chunk.clear();
    };
    start_set.ForEachSet([&](size_t v) {
      chunk.push_back(static_cast<uint32_t>(v));
      if (chunk.size() == 64) flush();
    });
    flush();
  } else {
    EvalScratch::Note(&s.visited_hw, n * q);
    s.visited.Resize(n * q);
    s.accepting.Resize(n);
    start_set.ForEachSet([&](size_t v) {
      ForwardReach(*nfa, view, test_sets, static_cast<uint32_t>(v),
                   s.visited, s.accepting, s.stack);
      s.accepting.ForEachSet([&](size_t w) {
        out.emplace_back(view.NodeAt(static_cast<uint32_t>(v)),
                         view.NodeAt(static_cast<uint32_t>(w)));
      });
    });
  }
  SortByRaw(out);
  return out;
}

std::vector<Value> AutomatonNreEvaluator::EvalFrom(const NrePtr& nre,
                                                   const Graph& g,
                                                   Value src) const {
  GraphView view(g);
  const uint32_t src_id = view.IdOf(src);
  if (src_id == GraphView::kInvalidNode) return {};
  CompiledNrePtr nfa = GetCompiled(nre);
  std::vector<Bitset> test_sets = SolveTests(*nfa, view);
  EvalScratch& s = LocalScratch();
  EvalScratch::Note(&s.visited_hw, view.num_nodes() * nfa->num_states());
  s.visited.Resize(view.num_nodes() * nfa->num_states());
  s.accepting.Resize(view.num_nodes());
  ForwardReach(*nfa, view, test_sets, src_id, s.visited, s.accepting,
               s.stack);
  std::vector<Value> out;
  s.accepting.ForEachSet([&](size_t w) {
    out.push_back(view.NodeAt(static_cast<uint32_t>(w)));
  });
  return out;
}

std::vector<std::vector<Value>> AutomatonNreEvaluator::EvalFromMany(
    const NrePtr& nre, const Graph& g, const std::vector<Value>& srcs) const {
  std::vector<std::vector<Value>> out(srcs.size());
  if (srcs.empty()) return out;
  GraphView view(g);
  const size_t n = view.num_nodes();
  if (n == 0) return out;
  CompiledNrePtr nfa = GetCompiled(nre);
  const size_t q = nfa->num_states();
  std::vector<Bitset> test_sets = SolveTests(*nfa, view);
  EvalScratch& s = LocalScratch();
  if (multi_source_mode_ == MultiSourceMode::kBatched && BatchFits(n, q)) {
    const CancellationToken* cancel = t_eval_cancel;
    // Chunk the batch in caller order; lane i of a pass is the chunk's
    // i-th *resolvable* source (unknown sources keep empty answers, as
    // EvalFrom returns for them).
    std::vector<uint32_t> chunk_ids;
    std::vector<size_t> chunk_slots;
    chunk_ids.reserve(64);
    chunk_slots.reserve(64);
    auto flush = [&] {
      if (chunk_ids.empty()) return;
      if (cancel != nullptr && cancel->stop_requested()) return;
      BatchedReach(*nfa, view, test_sets, chunk_ids.data(),
                   chunk_ids.size(), s);
      if (stats_sink_ != nullptr) {
        stats_sink_->RecordNreBatchPass(chunk_ids.size());
      }
      // Ascending node scan keeps each source's answer in dense-id order
      // — exactly EvalFrom's accepting.ForEachSet order.
      for (uint32_t v = 0; v < n; ++v) {
        uint64_t mask = s.accept_mask[v];
        while (mask != 0) {
          const size_t lane = static_cast<size_t>(__builtin_ctzll(mask));
          out[chunk_slots[lane]].push_back(view.NodeAt(v));
          mask &= mask - 1;
        }
      }
      chunk_ids.clear();
      chunk_slots.clear();
    };
    for (size_t i = 0; i < srcs.size(); ++i) {
      const uint32_t id = view.IdOf(srcs[i]);
      if (id == GraphView::kInvalidNode) continue;
      chunk_ids.push_back(id);
      chunk_slots.push_back(i);
      if (chunk_ids.size() == 64) flush();
    }
    flush();
  } else {
    EvalScratch::Note(&s.visited_hw, n * q);
    s.visited.Resize(n * q);
    s.accepting.Resize(n);
    for (size_t i = 0; i < srcs.size(); ++i) {
      const uint32_t id = view.IdOf(srcs[i]);
      if (id == GraphView::kInvalidNode) continue;
      ForwardReach(*nfa, view, test_sets, id, s.visited, s.accepting,
                   s.stack);
      s.accepting.ForEachSet([&](size_t w) {
        out[i].push_back(view.NodeAt(static_cast<uint32_t>(w)));
      });
    }
  }
  return out;
}

bool AutomatonNreEvaluator::Contains(const NrePtr& nre, const Graph& g,
                                     Value src, Value dst) const {
  GraphView view(g);
  const uint32_t src_id = view.IdOf(src);
  const uint32_t dst_id = view.IdOf(dst);
  if (src_id == GraphView::kInvalidNode ||
      dst_id == GraphView::kInvalidNode) {
    return false;
  }
  CompiledNrePtr nfa = GetCompiled(nre);
  std::vector<Bitset> test_sets = SolveTests(*nfa, view);
  EvalScratch& s = LocalScratch();
  EvalScratch::Note(&s.visited_hw, view.num_nodes() * nfa->num_states());
  s.visited.Resize(view.num_nodes() * nfa->num_states());
  s.accepting.Resize(view.num_nodes());
  // ForwardReach reports the stop_at acceptance exactly: every accepting
  // visit of dst_id sets the early-exit flag at push time.
  return ForwardReach(*nfa, view, test_sets, src_id, s.visited, s.accepting,
                      s.stack, dst_id);
}

// ---------------------------------------------------------------------------
// Brute force (tests only)
// ---------------------------------------------------------------------------

bool BruteForceContains(const NrePtr& nre, const Graph& g, Value src,
                        Value dst, int fuel) {
  if (fuel < 0) return false;
  switch (nre->kind()) {
    case Nre::Kind::kEpsilon:
      return src == dst;
    case Nre::Kind::kSymbol:
      return g.HasEdge(src, nre->symbol(), dst);
    case Nre::Kind::kInverse:
      return g.HasEdge(dst, nre->symbol(), src);
    case Nre::Kind::kUnion:
      return BruteForceContains(nre->left(), g, src, dst, fuel) ||
             BruteForceContains(nre->right(), g, src, dst, fuel);
    case Nre::Kind::kConcat:
      for (Value mid : g.nodes()) {
        if (BruteForceContains(nre->left(), g, src, mid, fuel) &&
            BruteForceContains(nre->right(), g, mid, dst, fuel)) {
          return true;
        }
      }
      return false;
    case Nre::Kind::kStar: {
      if (src == dst) return true;
      // Unroll: child once, then star with less fuel.
      for (Value mid : g.nodes()) {
        if (mid == src) continue;
        if (BruteForceContains(nre->child(), g, src, mid, fuel - 1) &&
            BruteForceContains(nre, g, mid, dst, fuel - 1)) {
          return true;
        }
      }
      return false;
    }
    case Nre::Kind::kNest: {
      if (src != dst) return false;
      for (Value other : g.nodes()) {
        if (BruteForceContains(nre->child(), g, src, other, fuel)) {
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

BinaryRelation BruteForceEval(const NrePtr& nre, const Graph& g, int fuel) {
  BinaryRelation out;
  for (Value u : g.nodes()) {
    for (Value v : g.nodes()) {
      if (BruteForceContains(nre, g, u, v, fuel)) out.emplace_back(u, v);
    }
  }
  SortByRaw(out);
  return out;
}

}  // namespace gdx
