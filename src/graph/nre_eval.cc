#include "graph/nre_eval.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace gdx {

namespace {

/// Dense indexing of graph nodes for the algorithms below.
struct NodeIndex {
  explicit NodeIndex(const Graph& g) {
    nodes = g.nodes();
    for (uint32_t i = 0; i < nodes.size(); ++i) index[nodes[i].raw()] = i;
  }
  uint32_t Of(Value v) const { return index.at(v.raw()); }
  size_t size() const { return nodes.size(); }

  std::vector<Value> nodes;
  std::unordered_map<uint64_t, uint32_t> index;
};

/// Dense binary relation: sorted, unique (src_idx, dst_idx) pairs.
using DenseRel = std::vector<std::pair<uint32_t, uint32_t>>;

void SortUnique(DenseRel& rel) {
  std::sort(rel.begin(), rel.end());
  rel.erase(std::unique(rel.begin(), rel.end()), rel.end());
}

DenseRel UnionRel(const DenseRel& a, const DenseRel& b) {
  DenseRel out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

DenseRel ComposeRel(const DenseRel& a, const DenseRel& b, size_t n) {
  // Index b by source.
  std::vector<std::vector<uint32_t>> by_src(n);
  for (const auto& [s, d] : b) by_src[s].push_back(d);
  DenseRel out;
  for (const auto& [s, d] : a) {
    for (uint32_t d2 : by_src[d]) out.emplace_back(s, d2);
  }
  SortUnique(out);
  return out;
}

DenseRel IdentityRel(size_t n) {
  DenseRel out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) out.emplace_back(i, i);
  return out;
}

/// Reflexive-transitive closure of `rel` via BFS from every node.
DenseRel ReflexiveTransitiveClosure(const DenseRel& rel, size_t n) {
  std::vector<std::vector<uint32_t>> adj(n);
  for (const auto& [s, d] : rel) adj[s].push_back(d);
  DenseRel out;
  std::vector<uint32_t> stack;
  std::vector<bool> visited(n);
  for (uint32_t src = 0; src < n; ++src) {
    std::fill(visited.begin(), visited.end(), false);
    stack.assign(1, src);
    visited[src] = true;
    while (!stack.empty()) {
      uint32_t u = stack.back();
      stack.pop_back();
      out.emplace_back(src, u);
      for (uint32_t v : adj[u]) {
        if (!visited[v]) {
          visited[v] = true;
          stack.push_back(v);
        }
      }
    }
  }
  SortUnique(out);
  return out;
}

DenseRel EvalDense(const NrePtr& nre, const Graph& g, const NodeIndex& ix) {
  const size_t n = ix.size();
  switch (nre->kind()) {
    case Nre::Kind::kEpsilon:
      return IdentityRel(n);
    case Nre::Kind::kSymbol: {
      DenseRel out;
      for (const Edge& e : g.edges()) {
        if (e.label == nre->symbol()) {
          out.emplace_back(ix.Of(e.src), ix.Of(e.dst));
        }
      }
      SortUnique(out);
      return out;
    }
    case Nre::Kind::kInverse: {
      DenseRel out;
      for (const Edge& e : g.edges()) {
        if (e.label == nre->symbol()) {
          out.emplace_back(ix.Of(e.dst), ix.Of(e.src));
        }
      }
      SortUnique(out);
      return out;
    }
    case Nre::Kind::kUnion:
      return UnionRel(EvalDense(nre->left(), g, ix),
                      EvalDense(nre->right(), g, ix));
    case Nre::Kind::kConcat:
      return ComposeRel(EvalDense(nre->left(), g, ix),
                        EvalDense(nre->right(), g, ix), n);
    case Nre::Kind::kStar:
      return ReflexiveTransitiveClosure(EvalDense(nre->child(), g, ix), n);
    case Nre::Kind::kNest: {
      DenseRel child = EvalDense(nre->child(), g, ix);
      DenseRel out;
      uint32_t last = UINT32_MAX;
      for (const auto& [s, d] : child) {
        (void)d;
        if (s != last) {
          out.emplace_back(s, s);
          last = s;
        }
      }
      return out;  // already sorted/unique
    }
  }
  return {};
}

BinaryRelation ToValueRelation(const DenseRel& rel, const NodeIndex& ix) {
  BinaryRelation out;
  out.reserve(rel.size());
  for (const auto& [s, d] : rel) {
    out.emplace_back(ix.nodes[s], ix.nodes[d]);
  }
  std::sort(out.begin(), out.end(), [](const NodePair& a, const NodePair& b) {
    if (a.first.raw() != b.first.raw()) return a.first.raw() < b.first.raw();
    return a.second.raw() < b.second.raw();
  });
  return out;
}

// ---------------------------------------------------------------------------
// Thompson NFA with nesting-test transitions.
// ---------------------------------------------------------------------------

struct NfaTransition {
  enum class Kind : uint8_t { kEps, kForward, kBackward, kTest };
  Kind kind;
  SymbolId symbol = 0;   // kForward/kBackward
  uint32_t test_id = 0;  // kTest
  uint32_t to = 0;
};

struct Nfa {
  uint32_t start = 0;
  uint32_t accept = 0;
  std::vector<std::vector<NfaTransition>> states;
  std::vector<NrePtr> tests;  // nesting sub-expressions, by test_id

  uint32_t NewState() {
    states.emplace_back();
    return static_cast<uint32_t>(states.size() - 1);
  }
  void Add(uint32_t from, NfaTransition t) {
    states[from].push_back(t);
  }
};

/// Thompson construction; returns (start, accept) fragment states.
std::pair<uint32_t, uint32_t> Build(const NrePtr& nre, Nfa& nfa) {
  uint32_t s = nfa.NewState();
  uint32_t t = nfa.NewState();
  using K = NfaTransition::Kind;
  switch (nre->kind()) {
    case Nre::Kind::kEpsilon:
      nfa.Add(s, {K::kEps, 0, 0, t});
      break;
    case Nre::Kind::kSymbol:
      nfa.Add(s, {K::kForward, nre->symbol(), 0, t});
      break;
    case Nre::Kind::kInverse:
      nfa.Add(s, {K::kBackward, nre->symbol(), 0, t});
      break;
    case Nre::Kind::kUnion: {
      auto [ls, lt] = Build(nre->left(), nfa);
      auto [rs, rt] = Build(nre->right(), nfa);
      nfa.Add(s, {K::kEps, 0, 0, ls});
      nfa.Add(s, {K::kEps, 0, 0, rs});
      nfa.Add(lt, {K::kEps, 0, 0, t});
      nfa.Add(rt, {K::kEps, 0, 0, t});
      break;
    }
    case Nre::Kind::kConcat: {
      auto [ls, lt] = Build(nre->left(), nfa);
      auto [rs, rt] = Build(nre->right(), nfa);
      nfa.Add(s, {K::kEps, 0, 0, ls});
      nfa.Add(lt, {K::kEps, 0, 0, rs});
      nfa.Add(rt, {K::kEps, 0, 0, t});
      break;
    }
    case Nre::Kind::kStar: {
      auto [cs, ct] = Build(nre->child(), nfa);
      nfa.Add(s, {K::kEps, 0, 0, t});
      nfa.Add(s, {K::kEps, 0, 0, cs});
      nfa.Add(ct, {K::kEps, 0, 0, cs});
      nfa.Add(ct, {K::kEps, 0, 0, t});
      break;
    }
    case Nre::Kind::kNest: {
      uint32_t test_id = static_cast<uint32_t>(nfa.tests.size());
      nfa.tests.push_back(nre->child());
      nfa.Add(s, {K::kTest, 0, test_id, t});
      break;
    }
  }
  return {s, t};
}

Nfa CompileNre(const NrePtr& nre) {
  Nfa nfa;
  auto [s, t] = Build(nre, nfa);
  nfa.start = s;
  nfa.accept = t;
  return nfa;
}

/// For each test of `nfa`, the set of graph nodes (as dense bitset) where
/// the nested expression has an outgoing path. Computed recursively.
std::vector<std::vector<bool>> SolveTests(const Nfa& nfa, const Graph& g,
                                          const NodeIndex& ix);

/// Set of nodes v such that (v, start) can reach (·, accept) in the product
/// graph × NFA — i.e. the *domain* of ⟦r⟧. Backward reachability from
/// every (node, accept) pair.
std::vector<bool> BackwardStartSet(const Nfa& nfa, const Graph& g,
                                   const NodeIndex& ix,
                                   const std::vector<std::vector<bool>>&
                                       test_sets) {
  const size_t n = ix.size();
  const size_t q = nfa.states.size();
  // Reverse product adjacency is explored on the fly; visited[(v,state)].
  std::vector<bool> visited(n * q, false);
  std::deque<std::pair<uint32_t, uint32_t>> queue;
  for (uint32_t v = 0; v < n; ++v) {
    visited[v * q + nfa.accept] = true;
    queue.emplace_back(v, nfa.accept);
  }
  // Precompute, for every state q', the transitions *into* q'.
  std::vector<std::vector<std::pair<uint32_t, NfaTransition>>> into(q);
  for (uint32_t s = 0; s < q; ++s) {
    for (const NfaTransition& t : nfa.states[s]) {
      into[t.to].emplace_back(s, t);
    }
  }
  using K = NfaTransition::Kind;
  while (!queue.empty()) {
    auto [v, state] = queue.front();
    queue.pop_front();
    Value node = ix.nodes[v];
    for (const auto& [src_state, t] : into[state]) {
      switch (t.kind) {
        case K::kEps: {
          if (!visited[v * q + src_state]) {
            visited[v * q + src_state] = true;
            queue.emplace_back(v, src_state);
          }
          break;
        }
        case K::kTest: {
          if (test_sets[t.test_id][v] && !visited[v * q + src_state]) {
            visited[v * q + src_state] = true;
            queue.emplace_back(v, src_state);
          }
          break;
        }
        case K::kForward: {
          // Transition consumed edge u --sym--> v.
          for (Value u : g.Predecessors(node, t.symbol)) {
            uint32_t ui = ix.Of(u);
            if (!visited[ui * q + src_state]) {
              visited[ui * q + src_state] = true;
              queue.emplace_back(ui, src_state);
            }
          }
          break;
        }
        case K::kBackward: {
          // Transition consumed edge v --sym--> u traversed backwards,
          // i.e. it moved from u to v where the graph edge is v <-sym- u:
          // a backward step from u lands on v iff (v, sym, u) ∈ E... the
          // forward direction is: at node u, backward transition moves to
          // any w with (w, sym, u) ∈ E. So u is a predecessor-in-product
          // of v iff (v, sym, u) ∈ E, i.e. u ∈ Successors(v, sym).
          for (Value u : g.Successors(node, t.symbol)) {
            uint32_t ui = ix.Of(u);
            if (!visited[ui * q + src_state]) {
              visited[ui * q + src_state] = true;
              queue.emplace_back(ui, src_state);
            }
          }
          break;
        }
      }
    }
  }
  std::vector<bool> start_set(n, false);
  for (uint32_t v = 0; v < n; ++v) {
    start_set[v] = visited[v * q + nfa.start];
  }
  return start_set;
}

std::vector<std::vector<bool>> SolveTests(const Nfa& nfa, const Graph& g,
                                          const NodeIndex& ix) {
  std::vector<std::vector<bool>> sets;
  sets.reserve(nfa.tests.size());
  for (const NrePtr& test : nfa.tests) {
    Nfa sub = CompileNre(test);
    std::vector<std::vector<bool>> sub_sets = SolveTests(sub, g, ix);
    sets.push_back(BackwardStartSet(sub, g, ix, sub_sets));
  }
  return sets;
}

/// Forward BFS over the product from (src, start); returns accepting nodes.
std::vector<uint32_t> ForwardReach(const Nfa& nfa, const Graph& g,
                                   const NodeIndex& ix,
                                   const std::vector<std::vector<bool>>&
                                       test_sets,
                                   uint32_t src) {
  const size_t q = nfa.states.size();
  const size_t n = ix.size();
  std::vector<bool> visited(n * q, false);
  std::vector<std::pair<uint32_t, uint32_t>> stack;
  visited[src * q + nfa.start] = true;
  stack.emplace_back(src, nfa.start);
  std::vector<uint32_t> accepting;
  std::vector<bool> accepted(n, false);
  using K = NfaTransition::Kind;
  while (!stack.empty()) {
    auto [v, state] = stack.back();
    stack.pop_back();
    if (state == nfa.accept && !accepted[v]) {
      accepted[v] = true;
      accepting.push_back(v);
    }
    Value node = ix.nodes[v];
    for (const NfaTransition& t : nfa.states[state]) {
      switch (t.kind) {
        case K::kEps:
          if (!visited[v * q + t.to]) {
            visited[v * q + t.to] = true;
            stack.emplace_back(v, t.to);
          }
          break;
        case K::kTest:
          if (test_sets[t.test_id][v] && !visited[v * q + t.to]) {
            visited[v * q + t.to] = true;
            stack.emplace_back(v, t.to);
          }
          break;
        case K::kForward:
          for (Value w : g.Successors(node, t.symbol)) {
            uint32_t wi = ix.Of(w);
            if (!visited[wi * q + t.to]) {
              visited[wi * q + t.to] = true;
              stack.emplace_back(wi, t.to);
            }
          }
          break;
        case K::kBackward:
          for (Value w : g.Predecessors(node, t.symbol)) {
            uint32_t wi = ix.Of(w);
            if (!visited[wi * q + t.to]) {
              visited[wi * q + t.to] = true;
              stack.emplace_back(wi, t.to);
            }
          }
          break;
      }
    }
  }
  std::sort(accepting.begin(), accepting.end());
  return accepting;
}

}  // namespace

// ---------------------------------------------------------------------------
// NreEvaluator defaults
// ---------------------------------------------------------------------------

std::vector<Value> NreEvaluator::EvalFrom(const NrePtr& nre, const Graph& g,
                                          Value src) const {
  std::vector<Value> out;
  for (const NodePair& p : Eval(nre, g)) {
    if (p.first == src) out.push_back(p.second);
  }
  return out;
}

bool NreEvaluator::Contains(const NrePtr& nre, const Graph& g, Value src,
                            Value dst) const {
  for (Value v : EvalFrom(nre, g, src)) {
    if (v == dst) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// NaiveNreEvaluator
// ---------------------------------------------------------------------------

BinaryRelation NaiveNreEvaluator::Eval(const NrePtr& nre,
                                       const Graph& g) const {
  NodeIndex ix(g);
  return ToValueRelation(EvalDense(nre, g, ix), ix);
}

// ---------------------------------------------------------------------------
// AutomatonNreEvaluator
// ---------------------------------------------------------------------------

BinaryRelation AutomatonNreEvaluator::Eval(const NrePtr& nre,
                                           const Graph& g) const {
  NodeIndex ix(g);
  Nfa nfa = CompileNre(nre);
  std::vector<std::vector<bool>> test_sets = SolveTests(nfa, g, ix);
  // Only sources in the automaton's start set can produce pairs; prune.
  std::vector<bool> start_set = BackwardStartSet(nfa, g, ix, test_sets);
  BinaryRelation out;
  for (uint32_t v = 0; v < ix.size(); ++v) {
    if (!start_set[v]) continue;
    for (uint32_t w : ForwardReach(nfa, g, ix, test_sets, v)) {
      out.emplace_back(ix.nodes[v], ix.nodes[w]);
    }
  }
  std::sort(out.begin(), out.end(), [](const NodePair& a, const NodePair& b) {
    if (a.first.raw() != b.first.raw()) return a.first.raw() < b.first.raw();
    return a.second.raw() < b.second.raw();
  });
  return out;
}

std::vector<Value> AutomatonNreEvaluator::EvalFrom(const NrePtr& nre,
                                                   const Graph& g,
                                                   Value src) const {
  if (!g.HasNode(src)) return {};
  NodeIndex ix(g);
  Nfa nfa = CompileNre(nre);
  std::vector<std::vector<bool>> test_sets = SolveTests(nfa, g, ix);
  std::vector<Value> out;
  for (uint32_t w : ForwardReach(nfa, g, ix, test_sets, ix.Of(src))) {
    out.push_back(ix.nodes[w]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Brute force (tests only)
// ---------------------------------------------------------------------------

bool BruteForceContains(const NrePtr& nre, const Graph& g, Value src,
                        Value dst, int fuel) {
  if (fuel < 0) return false;
  switch (nre->kind()) {
    case Nre::Kind::kEpsilon:
      return src == dst;
    case Nre::Kind::kSymbol:
      return g.HasEdge(src, nre->symbol(), dst);
    case Nre::Kind::kInverse:
      return g.HasEdge(dst, nre->symbol(), src);
    case Nre::Kind::kUnion:
      return BruteForceContains(nre->left(), g, src, dst, fuel) ||
             BruteForceContains(nre->right(), g, src, dst, fuel);
    case Nre::Kind::kConcat:
      for (Value mid : g.nodes()) {
        if (BruteForceContains(nre->left(), g, src, mid, fuel) &&
            BruteForceContains(nre->right(), g, mid, dst, fuel)) {
          return true;
        }
      }
      return false;
    case Nre::Kind::kStar: {
      if (src == dst) return true;
      // Unroll: child once, then star with less fuel.
      for (Value mid : g.nodes()) {
        if (mid == src) continue;
        if (BruteForceContains(nre->child(), g, src, mid, fuel - 1) &&
            BruteForceContains(nre, g, mid, dst, fuel - 1)) {
          return true;
        }
      }
      return false;
    }
    case Nre::Kind::kNest: {
      if (src != dst) return false;
      for (Value other : g.nodes()) {
        if (BruteForceContains(nre->child(), g, src, other, fuel)) {
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

BinaryRelation BruteForceEval(const NrePtr& nre, const Graph& g, int fuel) {
  BinaryRelation out;
  for (Value u : g.nodes()) {
    for (Value v : g.nodes()) {
      if (BruteForceContains(nre, g, u, v, fuel)) out.emplace_back(u, v);
    }
  }
  std::sort(out.begin(), out.end(), [](const NodePair& a, const NodePair& b) {
    if (a.first.raw() != b.first.raw()) return a.first.raw() < b.first.raw();
    return a.second.raw() < b.second.raw();
  });
  return out;
}

}  // namespace gdx
