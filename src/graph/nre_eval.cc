#include "graph/nre_eval.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "common/bitset.h"
#include "graph/graph_view.h"

namespace gdx {

namespace {

void SortByRaw(BinaryRelation& rel) {
  std::sort(rel.begin(), rel.end(), [](const NodePair& a, const NodePair& b) {
    if (a.first.raw() != b.first.raw()) return a.first.raw() < b.first.raw();
    return a.second.raw() < b.second.raw();
  });
}

// ---------------------------------------------------------------------------
// Legacy relation-algebra machinery (NaiveNreEvaluator): dense binary
// relations materialized per operator. Kept as the differential-test
// reference; the compiled evaluator below replaces it on the hot path.
// ---------------------------------------------------------------------------

/// Dense indexing of graph nodes for the algorithms below.
struct NodeIndex {
  explicit NodeIndex(const Graph& g) {
    nodes = g.nodes();
    for (uint32_t i = 0; i < nodes.size(); ++i) index[nodes[i].raw()] = i;
  }
  uint32_t Of(Value v) const { return index.at(v.raw()); }
  size_t size() const { return nodes.size(); }

  std::vector<Value> nodes;
  std::unordered_map<uint64_t, uint32_t> index;
};

/// Dense binary relation: sorted, unique (src_idx, dst_idx) pairs.
using DenseRel = std::vector<std::pair<uint32_t, uint32_t>>;

void SortUnique(DenseRel& rel) {
  std::sort(rel.begin(), rel.end());
  rel.erase(std::unique(rel.begin(), rel.end()), rel.end());
}

DenseRel UnionRel(const DenseRel& a, const DenseRel& b) {
  DenseRel out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

DenseRel ComposeRel(const DenseRel& a, const DenseRel& b, size_t n) {
  // Index b by source.
  std::vector<std::vector<uint32_t>> by_src(n);
  for (const auto& [s, d] : b) by_src[s].push_back(d);
  DenseRel out;
  for (const auto& [s, d] : a) {
    for (uint32_t d2 : by_src[d]) out.emplace_back(s, d2);
  }
  SortUnique(out);
  return out;
}

DenseRel IdentityRel(size_t n) {
  DenseRel out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) out.emplace_back(i, i);
  return out;
}

/// Reflexive-transitive closure of `rel` via BFS from every node.
DenseRel ReflexiveTransitiveClosure(const DenseRel& rel, size_t n) {
  std::vector<std::vector<uint32_t>> adj(n);
  for (const auto& [s, d] : rel) adj[s].push_back(d);
  DenseRel out;
  std::vector<uint32_t> stack;
  std::vector<bool> visited(n);
  for (uint32_t src = 0; src < n; ++src) {
    std::fill(visited.begin(), visited.end(), false);
    stack.assign(1, src);
    visited[src] = true;
    while (!stack.empty()) {
      uint32_t u = stack.back();
      stack.pop_back();
      out.emplace_back(src, u);
      for (uint32_t v : adj[u]) {
        if (!visited[v]) {
          visited[v] = true;
          stack.push_back(v);
        }
      }
    }
  }
  SortUnique(out);
  return out;
}

DenseRel EvalDense(const NrePtr& nre, const Graph& g, const NodeIndex& ix) {
  const size_t n = ix.size();
  switch (nre->kind()) {
    case Nre::Kind::kEpsilon:
      return IdentityRel(n);
    case Nre::Kind::kSymbol: {
      DenseRel out;
      for (const Edge& e : g.edges()) {
        if (e.label == nre->symbol()) {
          out.emplace_back(ix.Of(e.src), ix.Of(e.dst));
        }
      }
      SortUnique(out);
      return out;
    }
    case Nre::Kind::kInverse: {
      DenseRel out;
      for (const Edge& e : g.edges()) {
        if (e.label == nre->symbol()) {
          out.emplace_back(ix.Of(e.dst), ix.Of(e.src));
        }
      }
      SortUnique(out);
      return out;
    }
    case Nre::Kind::kUnion:
      return UnionRel(EvalDense(nre->left(), g, ix),
                      EvalDense(nre->right(), g, ix));
    case Nre::Kind::kConcat:
      return ComposeRel(EvalDense(nre->left(), g, ix),
                        EvalDense(nre->right(), g, ix), n);
    case Nre::Kind::kStar:
      return ReflexiveTransitiveClosure(EvalDense(nre->child(), g, ix), n);
    case Nre::Kind::kNest: {
      DenseRel child = EvalDense(nre->child(), g, ix);
      DenseRel out;
      uint32_t last = UINT32_MAX;
      for (const auto& [s, d] : child) {
        (void)d;
        if (s != last) {
          out.emplace_back(s, s);
          last = s;
        }
      }
      return out;  // already sorted/unique
    }
  }
  return {};
}

BinaryRelation ToValueRelation(const DenseRel& rel, const NodeIndex& ix) {
  BinaryRelation out;
  out.reserve(rel.size());
  for (const auto& [s, d] : rel) {
    out.emplace_back(ix.nodes[s], ix.nodes[d]);
  }
  SortByRaw(out);
  return out;
}

// ---------------------------------------------------------------------------
// Compiled product-graph BFS (ISSUE 3 tentpole part 3): CompiledNre × CSR
// GraphView, visited sets as flat 64-bit-word bitsets indexed node*q+state.
// The automaton is ε-free (closures folded in at compile time), so every
// BFS step consumes a graph edge or a nesting test — no ε bookkeeping.
// ---------------------------------------------------------------------------

/// Nodes v from which an accepting product path leaves — i.e. the *domain*
/// of ⟦r⟧: backward reachability from every accepting (node, state) pair
/// over the precompiled reverse transitions.
Bitset BackwardStartSet(const CompiledNre& nfa, const GraphView& view,
                        const std::vector<Bitset>& test_sets) {
  const size_t n = view.num_nodes();
  const size_t q = nfa.num_states();
  Bitset visited(n * q);
  std::vector<std::pair<uint32_t, uint32_t>> stack;
  auto push = [&](uint32_t v, uint32_t state) {
    if (visited.TestAndSet(v * q + state)) stack.emplace_back(v, state);
  };
  for (uint32_t s = 0; s < q; ++s) {
    if (!nfa.Accepting(s)) continue;
    for (uint32_t v = 0; v < n; ++v) push(v, s);
  }
  while (!stack.empty()) {
    const auto [v, state] = stack.back();
    stack.pop_back();
    const CompiledNre::State& rs = nfa.Reverse(state);
    for (const auto& [test_id, src_state] : rs.tests) {
      if (test_sets[test_id].Test(v)) push(v, src_state);
    }
    for (const auto& [sym, src_state] : rs.fwd) {
      // The transition consumed some edge u --sym--> v.
      for (uint32_t u : view.In(sym, v)) push(u, src_state);
    }
    for (const auto& [sym, src_state] : rs.bwd) {
      // The transition consumed an edge v --sym--> u traversed backwards.
      for (uint32_t u : view.Out(sym, v)) push(u, src_state);
    }
  }
  Bitset start_set(n);
  for (uint32_t v = 0; v < n; ++v) {
    if (visited.Test(v * q + nfa.start())) start_set.Set(v);
  }
  return start_set;
}

std::vector<Bitset> SolveTests(const CompiledNre& nfa,
                               const GraphView& view) {
  std::vector<Bitset> sets;
  sets.reserve(nfa.tests().size());
  for (const CompiledNrePtr& test : nfa.tests()) {
    std::vector<Bitset> sub_sets = SolveTests(*test, view);
    sets.push_back(BackwardStartSet(*test, view, sub_sets));
  }
  return sets;
}

/// Forward product BFS from (src, start); marks accepting nodes in
/// `accepting`. `visited` and `stack` are caller-owned scratch reused
/// across sources (reset here). When `stop_at` is a valid node id the
/// traversal returns true the moment that node accepts.
bool ForwardReach(const CompiledNre& nfa, const GraphView& view,
                  const std::vector<Bitset>& test_sets, uint32_t src,
                  Bitset& visited, Bitset& accepting,
                  std::vector<std::pair<uint32_t, uint32_t>>& stack,
                  uint32_t stop_at = GraphView::kInvalidNode) {
  const size_t q = nfa.num_states();
  visited.Reset();
  accepting.Reset();
  stack.clear();
  bool found = false;
  auto push = [&](uint32_t v, uint32_t state) {
    if (visited.TestAndSet(v * q + state)) {
      stack.emplace_back(v, state);
      if (nfa.Accepting(state)) {
        accepting.Set(v);
        if (v == stop_at) found = true;
      }
    }
  };
  push(src, nfa.start());
  while (!stack.empty() && !found) {
    const auto [v, state] = stack.back();
    stack.pop_back();
    const CompiledNre::State& fs = nfa.Forward(state);
    for (const auto& [test_id, to] : fs.tests) {
      if (test_sets[test_id].Test(v)) push(v, to);
    }
    for (const auto& [sym, to] : fs.fwd) {
      for (uint32_t w : view.Out(sym, v)) push(w, to);
    }
    for (const auto& [sym, to] : fs.bwd) {
      for (uint32_t w : view.In(sym, v)) push(w, to);
    }
  }
  return found;
}

}  // namespace

// ---------------------------------------------------------------------------
// NreEvaluator defaults
// ---------------------------------------------------------------------------

BinaryRelation NreEvaluator::EvalOnView(const NrePtr& nre,
                                        const GraphView& view) const {
  return Eval(nre, view.graph());
}

std::vector<Value> NreEvaluator::EvalFrom(const NrePtr& nre, const Graph& g,
                                          Value src) const {
  std::vector<Value> out;
  for (const NodePair& p : Eval(nre, g)) {
    if (p.first == src) out.push_back(p.second);
  }
  return out;
}

bool NreEvaluator::Contains(const NrePtr& nre, const Graph& g, Value src,
                            Value dst) const {
  for (Value v : EvalFrom(nre, g, src)) {
    if (v == dst) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// NaiveNreEvaluator
// ---------------------------------------------------------------------------

BinaryRelation NaiveNreEvaluator::Eval(const NrePtr& nre,
                                       const Graph& g) const {
  NodeIndex ix(g);
  return ToValueRelation(EvalDense(nre, g, ix), ix);
}

// ---------------------------------------------------------------------------
// AutomatonNreEvaluator (compiled)
// ---------------------------------------------------------------------------

CompiledNrePtr AutomatonNreEvaluator::GetCompiled(const NrePtr& nre) const {
  if (compile_cache_ != nullptr) return compile_cache_->GetOrCompile(nre);
  std::string key = NreRawSignature(*nre);
  {
    std::lock_guard<std::mutex> lock(memo_mutex_);
    auto it = local_memo_.find(key);
    if (it != local_memo_.end()) return it->second;
  }
  // Compile outside the lock; a racing worker's duplicate is discarded.
  CompiledNrePtr compiled = CompiledNre::Compile(nre);
  std::lock_guard<std::mutex> lock(memo_mutex_);
  constexpr size_t kLocalMemoCap = 4096;
  if (local_memo_.size() >= kLocalMemoCap) local_memo_.clear();
  // emplace keeps a racing worker's entry if it got there first.
  return local_memo_.emplace(std::move(key), compiled).first->second;
}

BinaryRelation AutomatonNreEvaluator::Eval(const NrePtr& nre,
                                           const Graph& g) const {
  GraphView view(g);
  return EvalOnView(nre, view);
}

BinaryRelation AutomatonNreEvaluator::EvalOnView(
    const NrePtr& nre, const GraphView& view) const {
  const size_t n = view.num_nodes();
  if (n == 0) return {};
  CompiledNrePtr nfa = GetCompiled(nre);
  std::vector<Bitset> test_sets = SolveTests(*nfa, view);
  // Only sources in the automaton's start set can produce pairs; prune
  // before fanning one forward BFS out per source. An accepting start
  // state makes every node its own witness — skip the backward pass.
  Bitset start_set(n);
  if (nfa->Accepting(nfa->start())) {
    for (uint32_t v = 0; v < n; ++v) start_set.Set(v);
  } else {
    start_set = BackwardStartSet(*nfa, view, test_sets);
  }
  BinaryRelation out;
  Bitset visited(n * nfa->num_states());
  Bitset accepting(n);
  std::vector<std::pair<uint32_t, uint32_t>> stack;
  start_set.ForEachSet([&](size_t v) {
    ForwardReach(*nfa, view, test_sets, static_cast<uint32_t>(v), visited,
                 accepting, stack);
    accepting.ForEachSet([&](size_t w) {
      out.emplace_back(view.NodeAt(static_cast<uint32_t>(v)),
                       view.NodeAt(static_cast<uint32_t>(w)));
    });
  });
  SortByRaw(out);
  return out;
}

std::vector<Value> AutomatonNreEvaluator::EvalFrom(const NrePtr& nre,
                                                   const Graph& g,
                                                   Value src) const {
  GraphView view(g);
  const uint32_t src_id = view.IdOf(src);
  if (src_id == GraphView::kInvalidNode) return {};
  CompiledNrePtr nfa = GetCompiled(nre);
  std::vector<Bitset> test_sets = SolveTests(*nfa, view);
  Bitset visited(view.num_nodes() * nfa->num_states());
  Bitset accepting(view.num_nodes());
  std::vector<std::pair<uint32_t, uint32_t>> stack;
  ForwardReach(*nfa, view, test_sets, src_id, visited, accepting, stack);
  std::vector<Value> out;
  accepting.ForEachSet([&](size_t w) {
    out.push_back(view.NodeAt(static_cast<uint32_t>(w)));
  });
  return out;
}

bool AutomatonNreEvaluator::Contains(const NrePtr& nre, const Graph& g,
                                     Value src, Value dst) const {
  GraphView view(g);
  const uint32_t src_id = view.IdOf(src);
  const uint32_t dst_id = view.IdOf(dst);
  if (src_id == GraphView::kInvalidNode ||
      dst_id == GraphView::kInvalidNode) {
    return false;
  }
  CompiledNrePtr nfa = GetCompiled(nre);
  std::vector<Bitset> test_sets = SolveTests(*nfa, view);
  Bitset visited(view.num_nodes() * nfa->num_states());
  Bitset accepting(view.num_nodes());
  std::vector<std::pair<uint32_t, uint32_t>> stack;
  // ForwardReach reports the stop_at acceptance exactly: every accepting
  // visit of dst_id sets the early-exit flag at push time.
  return ForwardReach(*nfa, view, test_sets, src_id, visited, accepting,
                      stack, dst_id);
}

// ---------------------------------------------------------------------------
// Brute force (tests only)
// ---------------------------------------------------------------------------

bool BruteForceContains(const NrePtr& nre, const Graph& g, Value src,
                        Value dst, int fuel) {
  if (fuel < 0) return false;
  switch (nre->kind()) {
    case Nre::Kind::kEpsilon:
      return src == dst;
    case Nre::Kind::kSymbol:
      return g.HasEdge(src, nre->symbol(), dst);
    case Nre::Kind::kInverse:
      return g.HasEdge(dst, nre->symbol(), src);
    case Nre::Kind::kUnion:
      return BruteForceContains(nre->left(), g, src, dst, fuel) ||
             BruteForceContains(nre->right(), g, src, dst, fuel);
    case Nre::Kind::kConcat:
      for (Value mid : g.nodes()) {
        if (BruteForceContains(nre->left(), g, src, mid, fuel) &&
            BruteForceContains(nre->right(), g, mid, dst, fuel)) {
          return true;
        }
      }
      return false;
    case Nre::Kind::kStar: {
      if (src == dst) return true;
      // Unroll: child once, then star with less fuel.
      for (Value mid : g.nodes()) {
        if (mid == src) continue;
        if (BruteForceContains(nre->child(), g, src, mid, fuel - 1) &&
            BruteForceContains(nre, g, mid, dst, fuel - 1)) {
          return true;
        }
      }
      return false;
    }
    case Nre::Kind::kNest: {
      if (src != dst) return false;
      for (Value other : g.nodes()) {
        if (BruteForceContains(nre->child(), g, src, other, fuel)) {
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

BinaryRelation BruteForceEval(const NrePtr& nre, const Graph& g, int fuel) {
  BinaryRelation out;
  for (Value u : g.nodes()) {
    for (Value v : g.nodes()) {
      if (BruteForceContains(nre, g, u, v, fuel)) out.emplace_back(u, v);
    }
  }
  SortByRaw(out);
  return out;
}

}  // namespace gdx
