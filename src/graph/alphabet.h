#ifndef GDX_GRAPH_ALPHABET_H_
#define GDX_GRAPH_ALPHABET_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/interner.h"

namespace gdx {

/// The target schema Σ of the paper: a finite alphabet of edge labels.
/// The distinguished label "sameAs" (§2) is interned on demand like any
/// other symbol; SameAsSymbol() returns it.
class Alphabet {
 public:
  SymbolId Intern(std::string_view name) { return symbols_.Intern(name); }

  std::optional<SymbolId> Find(std::string_view name) const {
    return symbols_.Find(name);
  }

  const std::string& NameOf(SymbolId id) const { return symbols_.NameOf(id); }

  /// The RDF-inspired sameAs label used by sameAs target constraints.
  SymbolId SameAsSymbol() { return symbols_.Intern("sameAs"); }

  /// Const, data-race-free lookup of the sameAs label for concurrent
  /// readers (the intra-solve search fans RepairAndVerify out over workers
  /// that share one alphabet; interning there would race). Building any
  /// sameAs constraint interns the label, so hot paths reached with
  /// non-empty constraints always find it.
  std::optional<SymbolId> FindSameAs() const {
    return symbols_.Find("sameAs");
  }

  size_t size() const { return symbols_.size(); }

 private:
  StringInterner symbols_;
};

}  // namespace gdx

#endif  // GDX_GRAPH_ALPHABET_H_
