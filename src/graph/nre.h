#ifndef GDX_GRAPH_NRE_H_
#define GDX_GRAPH_NRE_H_

#include <memory>
#include <string>

#include "graph/alphabet.h"

namespace gdx {

class Nre;

/// Shared immutable NRE node. NREs form immutable DAGs; copying a NrePtr is
/// O(1) and sub-expressions may be shared freely.
using NrePtr = std::shared_ptr<const Nre>;

/// Nested regular expressions (paper §2):
///   r := ε | a | a⁻ | r + r | r · r | r* | [r]
/// where a ∈ Σ; "+" is disjunction, "·" concatenation, "*" Kleene star,
/// "a⁻" traverses an a-edge backwards and "[r]" is the nesting test that
/// holds at nodes from which an r-path leaves (selecting pairs (x, x)).
class Nre {
 public:
  enum class Kind : uint8_t {
    kEpsilon,
    kSymbol,   // a
    kInverse,  // a⁻  (inverse applies to alphabet symbols, per the grammar)
    kUnion,    // r + r
    kConcat,   // r · r
    kStar,     // r*
    kNest,     // [r]
  };

  static NrePtr Epsilon();
  static NrePtr Symbol(SymbolId a);
  static NrePtr Inverse(SymbolId a);
  static NrePtr Union(NrePtr left, NrePtr right);
  static NrePtr Concat(NrePtr left, NrePtr right);
  static NrePtr Star(NrePtr child);
  static NrePtr Nest(NrePtr child);

  /// Convenience: a · a* ("one or more"), the paper's f·f* idiom.
  static NrePtr Plus(NrePtr child) {
    return Concat(child, Star(child));
  }

  Kind kind() const { return kind_; }
  /// For kSymbol / kInverse.
  SymbolId symbol() const { return symbol_; }
  /// For kUnion / kConcat.
  const NrePtr& left() const { return left_; }
  const NrePtr& right() const { return right_; }
  /// For kStar / kNest.
  const NrePtr& child() const { return left_; }

  /// Structural equality.
  bool Equals(const Nre& other) const;

  /// Structural hash, precomputed at construction: equal trees hash equal.
  size_t hash() const { return hash_; }

  /// Number of AST nodes.
  size_t Size() const;

  /// True if ε ∈ L(r) along the main path (nest tests ignored for length).
  bool Nullable() const;

  /// Pretty-prints with minimal parentheses, e.g. "f . f* [h] . f- . (f-)*".
  std::string ToString(const Alphabet& alphabet) const;

 private:
  Nre(Kind kind, SymbolId symbol, NrePtr left, NrePtr right)
      : kind_(kind), symbol_(symbol), left_(std::move(left)),
        right_(std::move(right)) {
    uint64_t h = static_cast<uint64_t>(kind_) * 0x9e3779b97f4a7c15ull +
                 symbol_ + 1;
    if (left_ != nullptr) h = h * 0xbf58476d1ce4e5b9ull + left_->hash_;
    if (right_ != nullptr) h = h * 0x94d049bb133111ebull + right_->hash_;
    h ^= h >> 29;
    hash_ = static_cast<size_t>(h);
  }

  std::string ToStringPrec(const Alphabet& alphabet, int parent_prec) const;

  Kind kind_;
  SymbolId symbol_ = 0;
  size_t hash_ = 0;
  NrePtr left_;
  NrePtr right_;
};

/// Structural-equality helper on pointers (null-safe).
bool NreEquals(const NrePtr& a, const NrePtr& b);

/// True if the expression is a single forward symbol `a` — the "definite
/// edge" case used by the §3.1 relational lowering and the egd chase's
/// definite subgraph.
bool IsSingleSymbol(const NrePtr& nre);

/// True if the expression is a union of forward symbols (a, a+b, a+b+c...),
/// the "flat head" fragment handled by the SAT-backed existence solver.
/// On success appends the symbols to *symbols.
bool IsSymbolUnion(const NrePtr& nre, std::vector<SymbolId>* symbols);

/// True if the expression is a concatenation a1 · a2 · ... · an of forward
/// symbols (a SORE(·) in the paper's terminology). On success appends the
/// symbols in order.
bool IsSymbolConcat(const NrePtr& nre, std::vector<SymbolId>* symbols);

}  // namespace gdx

#endif  // GDX_GRAPH_NRE_H_
