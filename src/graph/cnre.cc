#include "graph/cnre.h"

#include <algorithm>
#include <climits>
#include <unordered_map>
#include <unordered_set>

#include "graph/graph_view.h"

namespace gdx {
namespace {

/// Precomputed relation of one atom with lookup indexes.
struct AtomRelation {
  BinaryRelation pairs;
  std::unordered_set<std::pair<Value, Value>, ValuePairHash> pair_set;
  std::unordered_map<uint64_t, std::vector<Value>> by_src;
  std::unordered_map<uint64_t, std::vector<Value>> by_dst;

  void Build(BinaryRelation rel) {
    pairs = std::move(rel);
    for (const NodePair& p : pairs) {
      pair_set.insert(p);
      by_src[p.first.raw()].push_back(p.second);
      by_dst[p.second.raw()].push_back(p.first);
    }
  }
};

/// The value of a term under a binding, if determined.
std::optional<Value> TermValue(const Term& t, const CnreBinding& binding) {
  if (t.is_const()) return t.constant();
  return binding[t.var()];
}

struct Searcher {
  const CnreQuery& query;
  const std::vector<AtomRelation>& relations;
  const std::function<bool(const CnreBinding&)>& callback;
  CnreBinding binding;
  std::vector<bool> done;
  size_t remaining;

  /// Picks the next atom to process: prefers atoms with both terms bound,
  /// then one bound, then smallest relation.
  size_t PickAtom() const {
    size_t best = query.atoms().size();
    long best_score = LONG_MIN;
    for (size_t i = 0; i < query.atoms().size(); ++i) {
      if (done[i]) continue;
      const CnreAtom& atom = query.atoms()[i];
      long bound = 0;
      if (TermValue(atom.x, binding).has_value()) ++bound;
      if (TermValue(atom.y, binding).has_value()) ++bound;
      long score = bound * 1000000 -
                   static_cast<long>(std::min<size_t>(
                       relations[i].pairs.size(), 999999));
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    return best;
  }

  bool Search() {
    if (remaining == 0) return callback(binding);
    size_t i = PickAtom();
    done[i] = true;
    --remaining;
    const CnreAtom& atom = query.atoms()[i];
    const AtomRelation& rel = relations[i];
    std::optional<Value> xv = TermValue(atom.x, binding);
    std::optional<Value> yv = TermValue(atom.y, binding);
    bool keep_going = true;
    if (xv && yv) {
      if (rel.pair_set.count({*xv, *yv}) > 0) keep_going = Search();
    } else if (xv) {
      auto it = rel.by_src.find(xv->raw());
      if (it != rel.by_src.end()) {
        for (Value y : it->second) {
          binding[atom.y.var()] = y;
          keep_going = Search();
          binding[atom.y.var()].reset();
          if (!keep_going) break;
        }
      }
    } else if (yv) {
      auto it = rel.by_dst.find(yv->raw());
      if (it != rel.by_dst.end()) {
        for (Value x : it->second) {
          binding[atom.x.var()] = x;
          keep_going = Search();
          binding[atom.x.var()].reset();
          if (!keep_going) break;
        }
      }
    } else {
      for (const NodePair& p : rel.pairs) {
        if (atom.x.var() == atom.y.var()) {
          // x and y are the same variable: only diagonal pairs match.
          if (p.first != p.second) continue;
          binding[atom.x.var()] = p.first;
          keep_going = Search();
          binding[atom.x.var()].reset();
        } else {
          binding[atom.x.var()] = p.first;
          binding[atom.y.var()] = p.second;
          keep_going = Search();
          binding[atom.y.var()].reset();
          binding[atom.x.var()].reset();
        }
        if (!keep_going) break;
      }
    }
    done[i] = false;
    ++remaining;
    return keep_going;
  }
};

}  // namespace

struct CnreMatcher::Impl {
  std::vector<AtomRelation> relations;
};

namespace {

/// Shared constructor body: every atom evaluated against one view,
/// materialized lazily through `view_factory` (memo hits never build it;
/// duplicate NREs share their relation).
void BuildRelations(const CnreQuery& query, const Graph& graph,
                    const std::function<const GraphView&()>& view_factory,
                    const NreEvaluator& eval,
                    std::vector<AtomRelation>& relations) {
  relations.resize(query.atoms().size());
  for (size_t i = 0; i < query.atoms().size(); ++i) {
    bool shared = false;
    for (size_t j = 0; j < i; ++j) {
      if (NreEquals(query.atoms()[i].nre, query.atoms()[j].nre)) {
        relations[i] = relations[j];
        shared = true;
        break;
      }
    }
    if (!shared) {
      relations[i].Build(
          eval.EvalDeferred(query.atoms()[i].nre, graph, view_factory));
    }
  }
}

}  // namespace

CnreMatcher::CnreMatcher(const CnreQuery* query, const Graph* graph,
                         const NreEvaluator& eval)
    : query_(query), impl_(new Impl) {
  std::optional<GraphView> owned;
  auto factory = [&]() -> const GraphView& {
    if (!owned.has_value()) owned.emplace(*graph);
    return *owned;
  };
  BuildRelations(*query, *graph, factory, eval, impl_->relations);
}

CnreMatcher::CnreMatcher(const CnreQuery* query, const GraphView* view,
                         const NreEvaluator& eval)
    : query_(query), impl_(new Impl) {
  BuildRelations(*query, view->graph(), [view]() -> const GraphView& {
    return *view;
  }, eval, impl_->relations);
}

CnreMatcher::~CnreMatcher() = default;
CnreMatcher::CnreMatcher(CnreMatcher&&) noexcept = default;
CnreMatcher& CnreMatcher::operator=(CnreMatcher&&) noexcept = default;

void CnreMatcher::FindMatches(
    const CnreBinding& initial,
    const std::function<bool(const CnreBinding&)>& callback) const {
  CnreBinding binding = initial;
  binding.resize(query_->num_vars());
  Searcher searcher{*query_, impl_->relations, callback, std::move(binding),
                    std::vector<bool>(query_->atoms().size(), false),
                    query_->atoms().size()};
  searcher.Search();
}

bool CnreMatcher::Satisfiable(const CnreBinding& initial) const {
  bool found = false;
  FindMatches(initial, [&](const CnreBinding&) {
    found = true;
    return false;
  });
  return found;
}

void FindCnreMatches(const CnreQuery& query, const Graph& g,
                     const NreEvaluator& eval, const CnreBinding& initial,
                     const std::function<bool(const CnreBinding&)>& callback) {
  CnreMatcher(&query, &g, eval).FindMatches(initial, callback);
}

std::vector<std::vector<Value>> EvaluateCnre(const CnreQuery& query,
                                             const Graph& g,
                                             const NreEvaluator& eval) {
  std::vector<std::vector<Value>> out;
  std::unordered_set<std::vector<Value>, ValueVecHash> seen;
  FindCnreMatches(query, g, eval, {}, [&](const CnreBinding& binding) {
    std::vector<Value> row;
    row.reserve(query.head().size());
    for (VarId v : query.head()) {
      if (!binding[v].has_value()) return true;  // head var not constrained
      row.push_back(*binding[v]);
    }
    if (seen.insert(row).second) out.push_back(std::move(row));
    return true;
  });
  return out;
}

bool CnreSatisfiable(const CnreQuery& query, const Graph& g,
                     const NreEvaluator& eval, const CnreBinding& initial) {
  return CnreMatcher(&query, &g, eval).Satisfiable(initial);
}

}  // namespace gdx
