#include "graph/nre_parser.h"

#include <cctype>
#include <string>

namespace gdx {
namespace {

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  Parser(std::string_view text, Alphabet& alphabet)
      : text_(text), alphabet_(alphabet) {}

  Result<NrePtr> Parse() {
    Result<NrePtr> expr = ParseExpr();
    if (!expr.ok()) return expr;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing input");
    }
    return expr;
  }

 private:
  Status ErrorStatus(const std::string& message) const {
    return Status::InvalidArgument("NRE parse error at position " +
                                   std::to_string(pos_) + ": " + message +
                                   " in \"" + std::string(text_) + "\"");
  }
  Result<NrePtr> Error(const std::string& message) const {
    return ErrorStatus(message);
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(
                                      text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Consume(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<NrePtr> ParseExpr() {
    Result<NrePtr> left = ParseTerm();
    if (!left.ok()) return left;
    NrePtr node = std::move(left).value();
    while (Consume('+')) {
      Result<NrePtr> right = ParseTerm();
      if (!right.ok()) return right;
      node = Nre::Union(std::move(node), std::move(right).value());
    }
    return node;
  }

  Result<NrePtr> ParseTerm() {
    Result<NrePtr> left = ParseFactor();
    if (!left.ok()) return left;
    NrePtr node = std::move(left).value();
    for (;;) {
      SkipSpace();
      // Explicit '.' concatenation, or implicit before '[' (the common
      // "f*[h]" idiom from the paper).
      if (Consume('.')) {
        Result<NrePtr> right = ParseFactor();
        if (!right.ok()) return right;
        node = Nre::Concat(std::move(node), std::move(right).value());
      } else if (Peek('[')) {
        Result<NrePtr> right = ParseFactor();
        if (!right.ok()) return right;
        node = Nre::Concat(std::move(node), std::move(right).value());
      } else {
        break;
      }
    }
    return node;
  }

  Result<NrePtr> ParseFactor() {
    SkipSpace();
    Result<NrePtr> atom = ParseAtom();
    if (!atom.ok()) return atom;
    NrePtr node = std::move(atom).value();
    for (;;) {
      SkipSpace();
      if (Consume('*')) {
        node = Nre::Star(std::move(node));
      } else if (pos_ < text_.size() && text_[pos_] == '-') {
        if (node->kind() != Nre::Kind::kSymbol) {
          return Error("inverse '-' applies only to alphabet symbols");
        }
        ++pos_;
        node = Nre::Inverse(node->symbol());
      } else {
        break;
      }
    }
    return node;
  }

  Result<NrePtr> ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      Result<NrePtr> inner = ParseExpr();
      if (!inner.ok()) return inner;
      if (!Consume(')')) return Error("expected ')'");
      return inner;
    }
    if (c == '[') {
      ++pos_;
      Result<NrePtr> inner = ParseExpr();
      if (!inner.ok()) return inner;
      if (!Consume(']')) return Error("expected ']'");
      return Nre::Nest(std::move(inner).value());
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      std::string_view ident = text_.substr(start, pos_ - start);
      if (ident == "eps") return Nre::Epsilon();
      return Nre::Symbol(alphabet_.Intern(ident));
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  std::string_view text_;
  Alphabet& alphabet_;
  size_t pos_ = 0;
};

}  // namespace

Result<NrePtr> ParseNre(std::string_view text, Alphabet& alphabet) {
  return Parser(text, alphabet).Parse();
}

}  // namespace gdx
