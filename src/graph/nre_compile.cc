#include "graph/nre_compile.h"

#include <algorithm>
#include <map>

namespace gdx {
namespace {

/// Mutable Thompson construction state: ε-edges live here and are folded
/// into the consuming transitions at the end; only those survive.
struct Builder {
  std::vector<std::vector<uint32_t>> eps;  // per-state ε targets
  std::vector<CompiledNre::State> states;
  std::vector<NrePtr> tests;

  uint32_t NewState() {
    eps.emplace_back();
    states.emplace_back();
    return static_cast<uint32_t>(states.size() - 1);
  }

  /// Thompson fragment for `nre`; returns (start, accept).
  std::pair<uint32_t, uint32_t> Build(const NrePtr& nre) {
    uint32_t s = NewState();
    uint32_t t = NewState();
    switch (nre->kind()) {
      case Nre::Kind::kEpsilon:
        eps[s].push_back(t);
        break;
      case Nre::Kind::kSymbol:
        states[s].fwd.emplace_back(nre->symbol(), t);
        break;
      case Nre::Kind::kInverse:
        states[s].bwd.emplace_back(nre->symbol(), t);
        break;
      case Nre::Kind::kUnion: {
        auto [ls, lt] = Build(nre->left());
        auto [rs, rt] = Build(nre->right());
        eps[s].push_back(ls);
        eps[s].push_back(rs);
        eps[lt].push_back(t);
        eps[rt].push_back(t);
        break;
      }
      case Nre::Kind::kConcat: {
        auto [ls, lt] = Build(nre->left());
        auto [rs, rt] = Build(nre->right());
        eps[s].push_back(ls);
        eps[lt].push_back(rs);
        eps[rt].push_back(t);
        break;
      }
      case Nre::Kind::kStar: {
        auto [cs, ct] = Build(nre->child());
        eps[s].push_back(t);
        eps[s].push_back(cs);
        eps[ct].push_back(cs);
        eps[ct].push_back(t);
        break;
      }
      case Nre::Kind::kNest: {
        uint32_t test_id = static_cast<uint32_t>(tests.size());
        tests.push_back(nre->child());
        states[s].tests.emplace_back(test_id, t);
        break;
      }
    }
    return {s, t};
  }
};

/// ε-closure of every state (includes the state itself; ascending).
std::vector<std::vector<uint32_t>> ComputeClosures(
    const std::vector<std::vector<uint32_t>>& eps) {
  const size_t q = eps.size();
  std::vector<std::vector<uint32_t>> closures(q);
  std::vector<uint32_t> stack;
  std::vector<uint8_t> seen(q, 0);
  for (uint32_t s = 0; s < q; ++s) {
    std::fill(seen.begin(), seen.end(), 0);
    stack.assign(1, s);
    seen[s] = 1;
    std::vector<uint32_t>& closure = closures[s];
    while (!stack.empty()) {
      uint32_t u = stack.back();
      stack.pop_back();
      closure.push_back(u);
      for (uint32_t v : eps[u]) {
        if (!seen[v]) {
          seen[v] = 1;
          stack.push_back(v);
        }
      }
    }
    std::sort(closure.begin(), closure.end());
  }
  return closures;
}

template <typename Payload>
void SortUniqueTransitions(
    std::vector<std::pair<Payload, uint32_t>>& transitions) {
  std::sort(transitions.begin(), transitions.end());
  transitions.erase(std::unique(transitions.begin(), transitions.end()),
                    transitions.end());
}

/// The reversed transition lists of an ε-free automaton, in the one
/// canonical order both Compile and FromParts produce: source states
/// visited ascending, so each reversed list is ordered by source state
/// (not by payload).
std::vector<CompiledNre::State> DeriveReverse(
    const std::vector<CompiledNre::State>& states) {
  std::vector<CompiledNre::State> rstates(states.size());
  for (uint32_t s = 0; s < states.size(); ++s) {
    for (const auto& [id, t] : states[s].tests) {
      rstates[t].tests.emplace_back(id, s);
    }
    for (const auto& [sym, t] : states[s].fwd) {
      rstates[t].fwd.emplace_back(sym, s);
    }
    for (const auto& [sym, t] : states[s].bwd) {
      rstates[t].bwd.emplace_back(sym, s);
    }
  }
  return rstates;
}

template <typename Payload>
bool IsStrictlySorted(
    const std::vector<std::pair<Payload, uint32_t>>& transitions) {
  return std::adjacent_find(transitions.begin(), transitions.end(),
                            [](const auto& a, const auto& b) {
                              return !(a < b);
                            }) == transitions.end();
}

}  // namespace

CompiledNrePtr CompiledNre::Compile(const NrePtr& nre) {
  Builder builder;
  auto [start, accept] = builder.Build(nre);
  const size_t raw_q = builder.states.size();
  std::vector<std::vector<uint32_t>> closures =
      ComputeClosures(builder.eps);

  // ε-elimination: a state's effective transitions are the union of the
  // consuming transitions of its ε-closure, and it accepts iff its closure
  // contains the Thompson accept state.
  std::vector<State> effective(raw_q);
  std::vector<uint8_t> accepting(raw_q, 0);
  for (uint32_t s = 0; s < raw_q; ++s) {
    for (uint32_t t : closures[s]) {
      const State& src = builder.states[t];
      effective[s].tests.insert(effective[s].tests.end(), src.tests.begin(),
                                src.tests.end());
      effective[s].fwd.insert(effective[s].fwd.end(), src.fwd.begin(),
                              src.fwd.end());
      effective[s].bwd.insert(effective[s].bwd.end(), src.bwd.begin(),
                              src.bwd.end());
      if (t == accept) accepting[s] = 1;
    }
    SortUniqueTransitions(effective[s].tests);
    SortUniqueTransitions(effective[s].fwd);
    SortUniqueTransitions(effective[s].bwd);
  }

  // Keep only states reachable from the start via consuming transitions
  // (BFS discovery order — deterministic) and renumber. This is the
  // Glushkov-style compaction: what survives is one state per reachable
  // symbol/test occurrence plus the start.
  constexpr uint32_t kDropped = UINT32_MAX;
  std::vector<uint32_t> renumber(raw_q, kDropped);
  std::vector<uint32_t> kept;
  renumber[start] = 0;
  kept.push_back(start);
  for (size_t i = 0; i < kept.size(); ++i) {
    const State& st = effective[kept[i]];
    auto visit = [&](uint32_t t) {
      if (renumber[t] == kDropped) {
        renumber[t] = static_cast<uint32_t>(kept.size());
        kept.push_back(t);
      }
    };
    for (const auto& [id, t] : st.tests) visit(t);
    for (const auto& [sym, t] : st.fwd) visit(t);
    for (const auto& [sym, t] : st.bwd) visit(t);
  }

  // Renumbered ε-free automaton over the kept states.
  const size_t kept_q = kept.size();
  std::vector<State> fwd_states(kept_q);
  std::vector<uint8_t> kept_accepting(kept_q);
  for (uint32_t s = 0; s < kept_q; ++s) {
    const State& src = effective[kept[s]];
    State& dst = fwd_states[s];
    kept_accepting[s] = accepting[kept[s]];
    for (const auto& [id, t] : src.tests) dst.tests.emplace_back(id, renumber[t]);
    for (const auto& [sym, t] : src.fwd) dst.fwd.emplace_back(sym, renumber[t]);
    for (const auto& [sym, t] : src.bwd) dst.bwd.emplace_back(sym, renumber[t]);
  }

  // Forward-bisimulation merge (partition refinement): states with equal
  // acceptance and equal transition sets *up to target class* recognize
  // the same continuation language, so collapsing them preserves ⟦r⟧
  // while shrinking the product dimension. (l1+l2)* collapses to a single
  // state, turning product BFS into plain graph BFS.
  std::vector<uint32_t> cls(kept_q);
  for (uint32_t s = 0; s < kept_q; ++s) cls[s] = kept_accepting[s];
  size_t num_classes = 2;
  for (;;) {
    // Signature: acceptance + transitions with targets mapped to classes.
    struct Sig {
      uint8_t accepting;
      std::vector<std::pair<uint32_t, uint32_t>> tests;
      std::vector<std::pair<SymbolId, uint32_t>> fwd, bwd;
      bool operator<(const Sig& o) const {
        if (accepting != o.accepting) return accepting < o.accepting;
        if (tests != o.tests) return tests < o.tests;
        if (fwd != o.fwd) return fwd < o.fwd;
        return bwd < o.bwd;
      }
    };
    std::vector<Sig> sigs(kept_q);
    for (uint32_t s = 0; s < kept_q; ++s) {
      Sig& sig = sigs[s];
      sig.accepting = kept_accepting[s];
      for (const auto& [id, t] : fwd_states[s].tests) {
        sig.tests.emplace_back(id, cls[t]);
      }
      for (const auto& [sym, t] : fwd_states[s].fwd) {
        sig.fwd.emplace_back(sym, cls[t]);
      }
      for (const auto& [sym, t] : fwd_states[s].bwd) {
        sig.bwd.emplace_back(sym, cls[t]);
      }
      SortUniqueTransitions(sig.tests);
      SortUniqueTransitions(sig.fwd);
      SortUniqueTransitions(sig.bwd);
    }
    // New class ids in first-occurrence (state index) order: deterministic.
    std::map<Sig, uint32_t> by_sig;
    std::vector<uint32_t> next(kept_q);
    for (uint32_t s = 0; s < kept_q; ++s) {
      auto [it, fresh] =
          by_sig.emplace(std::move(sigs[s]),
                         static_cast<uint32_t>(by_sig.size()));
      next[s] = it->second;
      (void)fresh;
    }
    const size_t new_count = by_sig.size();
    const bool stable = new_count == num_classes && next == cls;
    cls = std::move(next);
    num_classes = new_count;
    if (stable) break;
  }

  auto compiled = std::shared_ptr<CompiledNre>(new CompiledNre);
  // Class ids are assigned in first-occurrence (state index) order, so the
  // start — kept state 0 — is always class 0 and numbering is
  // deterministic.
  const uint32_t q = static_cast<uint32_t>(num_classes);
  compiled->states_.resize(q);
  compiled->accepting_.assign(q, 0);
  std::vector<uint8_t> built(q, 0);
  compiled->start_ = cls[0];
  for (uint32_t s = 0; s < kept_q; ++s) {
    const uint32_t c = cls[s];
    compiled->accepting_[c] |= kept_accepting[s];
    if (built[c]) continue;  // class representatives are bisimilar
    built[c] = 1;
    State& dst = compiled->states_[c];
    for (const auto& [id, t] : fwd_states[s].tests) {
      dst.tests.emplace_back(id, cls[t]);
    }
    for (const auto& [sym, t] : fwd_states[s].fwd) {
      dst.fwd.emplace_back(sym, cls[t]);
    }
    for (const auto& [sym, t] : fwd_states[s].bwd) {
      dst.bwd.emplace_back(sym, cls[t]);
    }
    SortUniqueTransitions(dst.tests);
    SortUniqueTransitions(dst.fwd);
    SortUniqueTransitions(dst.bwd);
  }
  compiled->rstates_ = DeriveReverse(compiled->states_);

  compiled->tests_.reserve(builder.tests.size());
  for (const NrePtr& test : builder.tests) {
    compiled->tests_.push_back(Compile(test));
  }
  return compiled;
}

CompiledNrePtr CompiledNre::FromParts(uint32_t start,
                                      std::vector<State> states,
                                      std::vector<uint8_t> accepting,
                                      std::vector<CompiledNrePtr> tests) {
  const size_t q = states.size();
  // Shape: at least one state (Compile never emits fewer), parallel
  // per-state arrays, 0/1 accepting flags, no missing sub-automaton.
  if (q == 0 || start >= q) return nullptr;
  if (accepting.size() != q) return nullptr;
  for (uint8_t flag : accepting) {
    if (flag > 1) return nullptr;
  }
  for (const CompiledNrePtr& test : tests) {
    if (test == nullptr) return nullptr;
  }
  // Transitions: every index in range, every list in the canonical
  // sorted duplicate-free order Compile produces — evaluators iterate
  // these lists, so canonical order keeps a restored plan's behavior
  // bit-identical to a fresh compile.
  for (const State& st : states) {
    for (const auto& [id, t] : st.tests) {
      if (id >= tests.size() || t >= q) return nullptr;
    }
    for (const auto& [sym, t] : st.fwd) {
      (void)sym;
      if (t >= q) return nullptr;
    }
    for (const auto& [sym, t] : st.bwd) {
      (void)sym;
      if (t >= q) return nullptr;
    }
    if (!IsStrictlySorted(st.tests) || !IsStrictlySorted(st.fwd) ||
        !IsStrictlySorted(st.bwd)) {
      return nullptr;
    }
  }
  auto compiled = std::shared_ptr<CompiledNre>(new CompiledNre);
  compiled->start_ = start;
  // The reversed lists are redundant with the forward ones: derive them
  // in the same canonical order Compile uses instead of trusting (or
  // transporting) a second copy.
  compiled->rstates_ = DeriveReverse(states);
  compiled->states_ = std::move(states);
  compiled->accepting_ = std::move(accepting);
  compiled->tests_ = std::move(tests);
  return compiled;
}

void AppendRawU64(uint64_t x, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(x & 0xff));
    x >>= 8;
  }
}

void AppendNreRawSignature(const Nre& nre, std::string* out) {
  out->push_back(static_cast<char>(nre.kind()));
  switch (nre.kind()) {
    case Nre::Kind::kEpsilon:
      break;
    case Nre::Kind::kSymbol:
    case Nre::Kind::kInverse:
      AppendRawU64(nre.symbol(), out);
      break;
    case Nre::Kind::kUnion:
    case Nre::Kind::kConcat:
      AppendNreRawSignature(*nre.left(), out);
      AppendNreRawSignature(*nre.right(), out);
      break;
    case Nre::Kind::kStar:
    case Nre::Kind::kNest:
      AppendNreRawSignature(*nre.child(), out);
      break;
  }
}

std::string NreRawSignature(const Nre& nre) {
  std::string out;
  AppendNreRawSignature(nre, &out);
  return out;
}

void AppendTermRawSignature(const Term& term, std::string* out) {
  if (term.is_var()) {
    out->push_back('v');
    AppendRawU64(term.var(), out);
  } else {
    out->push_back('c');
    AppendRawU64(term.constant().raw(), out);
  }
}

}  // namespace gdx
