#ifndef GDX_GRAPH_GRAPH_H_
#define GDX_GRAPH_GRAPH_H_

#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/universe.h"
#include "common/value.h"
#include "graph/alphabet.h"

namespace gdx {

/// One directed labeled edge (u, a, v) ∈ V × Σ × V.
struct Edge {
  Value src;
  SymbolId label;
  Value dst;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.label == b.label && a.dst == b.dst;
  }
};

/// A graph database over Σ (paper §2): a directed, edge-labeled graph
/// G = (V, E). Nodes are Values — constants, or labeled nulls when the
/// graph was produced by instantiating a pattern. Node and edge sets are
/// duplicate-free and iterate in insertion order (deterministic).
class Graph {
 public:
  /// Adds an isolated node (no-op if present).
  void AddNode(Value v);

  /// Adds an edge, implicitly adding endpoints. Returns true if new.
  bool AddEdge(Value src, SymbolId label, Value dst);

  bool HasNode(Value v) const { return node_set_.count(v.raw()) > 0; }
  bool HasEdge(Value src, SymbolId label, Value dst) const;

  const std::vector<Value>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Successors of `v` via label `a` (empty if none).
  const std::vector<Value>& Successors(Value v, SymbolId a) const;

  /// Predecessors of `v` via label `a` (empty if none).
  const std::vector<Value>& Predecessors(Value v, SymbolId a) const;

  /// All (u, v) pairs with an `a`-labeled edge, in insertion order. Served
  /// from a per-label index maintained by AddEdge — O(1), no copy.
  const std::vector<std::pair<Value, Value>>& EdgesWithLabel(
      SymbolId a) const;

  /// Order-independent 128-bit hash of the node and edge content (raw value
  /// encodings + label ids; names play no part). Graphs with equal content
  /// hash equal regardless of insertion order or owning universe's
  /// spellings. Cached; invalidated by mutation.
  std::pair<uint64_t, uint64_t> ContentHash() const;

  /// Exact, order-independent binary serialization of the node and edge
  /// content (raw encodings; no names): equal strings <=> identical
  /// node/edge sets. Prefixed with ContentHash so unequal keys compare
  /// unequal within the first bytes. Cached; invalidated by mutation.
  /// This is the engine NRE-memo key component — unlike ContentHash alone
  /// it cannot collide.
  const std::string& RawSignature() const;

  /// Pre-sizes the node/edge vectors and every rebuilt index for the given
  /// counts — one allocation each instead of growth doubling. Rebuilds
  /// (RewriteValues, bulk loads) know their sizes up front.
  void ReserveFor(size_t num_nodes, size_t num_edges);

  /// Rebuilds the graph replacing every value by `rewrite(value)` —
  /// used when egd merges identify nodes. Re-deduplicates. The rebuild
  /// reserves from the old sizes (an upper bound: merges only shrink the
  /// sets), so the repeated egd-merge rebuilds stop reallocating.
  template <typename Fn>
  void RewriteValues(Fn rewrite) {
    std::vector<Value> old_nodes = std::move(nodes_);
    std::vector<Edge> old_edges = std::move(edges_);
    Clear();
    ReserveFor(old_nodes.size(), old_edges.size());
    for (Value v : old_nodes) AddNode(rewrite(v));
    for (const Edge& e : old_edges) {
      AddEdge(rewrite(e.src), e.label, rewrite(e.dst));
    }
  }

  void Clear();

  /// Multi-line human-readable rendering, e.g. "c1 -f-> N1".
  std::string ToString(const Universe& universe,
                       const Alphabet& alphabet) const;

  /// Canonical one-line signature (sorted edge triples by name); equal
  /// signatures <=> identical node/edge sets. Used to dedup candidate
  /// solutions in the bounded search.
  std::string Signature(const Universe& universe,
                        const Alphabet& alphabet) const;

 private:
  struct NodeLabelKey {
    uint64_t node_raw;
    SymbolId label;
    friend bool operator==(const NodeLabelKey& a, const NodeLabelKey& b) {
      return a.node_raw == b.node_raw && a.label == b.label;
    }
  };
  struct NodeLabelKeyHash {
    size_t operator()(const NodeLabelKey& k) const {
      uint64_t x = k.node_raw * 0x9e3779b97f4a7c15ull + k.label;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      return static_cast<size_t>(x ^ (x >> 27));
    }
  };
  struct EdgeKey {
    uint64_t src_raw;
    SymbolId label;
    uint64_t dst_raw;
    friend bool operator==(const EdgeKey& a, const EdgeKey& b) {
      return a.src_raw == b.src_raw && a.label == b.label &&
             a.dst_raw == b.dst_raw;
    }
  };
  struct EdgeKeyHash {
    size_t operator()(const EdgeKey& k) const {
      uint64_t x = k.src_raw;
      x = x * 0x9e3779b97f4a7c15ull + k.label;
      x = x * 0x9e3779b97f4a7c15ull + k.dst_raw;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      return static_cast<size_t>(x ^ (x >> 27));
    }
  };

  std::vector<Value> nodes_;
  std::unordered_set<uint64_t> node_set_;
  std::vector<Edge> edges_;
  std::unordered_set<EdgeKey, EdgeKeyHash> edge_set_;
  std::unordered_map<NodeLabelKey, std::vector<Value>, NodeLabelKeyHash>
      successors_;
  std::unordered_map<NodeLabelKey, std::vector<Value>, NodeLabelKeyHash>
      predecessors_;
  std::unordered_map<SymbolId, std::vector<std::pair<Value, Value>>>
      label_index_;

  mutable bool content_hash_valid_ = false;
  mutable std::pair<uint64_t, uint64_t> content_hash_{0, 0};
  mutable bool raw_signature_valid_ = false;
  mutable std::string raw_signature_;
};

}  // namespace gdx

#endif  // GDX_GRAPH_GRAPH_H_
