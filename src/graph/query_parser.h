#ifndef GDX_GRAPH_QUERY_PARSER_H_
#define GDX_GRAPH_QUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "common/universe.h"
#include "graph/cnre.h"

namespace gdx {

/// Parses a full CNRE query:
///
///   (x1, f . f* [h] . f- . (f-)*, x2) -> x1, x2
///   (x, a, y), (y, b, z) -> x, z
///   (x, a, y)                          -- Boolean (no head)
///
/// Unquoted identifiers are variables; 'quoted' identifiers are constants
/// interned into `universe`. Head variables must occur in the body.
Result<CnreQuery> ParseCnreQuery(std::string_view text, Alphabet& alphabet,
                                 Universe& universe);

}  // namespace gdx

#endif  // GDX_GRAPH_QUERY_PARSER_H_
