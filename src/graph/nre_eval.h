#ifndef GDX_GRAPH_NRE_EVAL_H_
#define GDX_GRAPH_NRE_EVAL_H_

#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/nre.h"

namespace gdx {

/// A pair of graph nodes connected by an NRE path.
using NodePair = std::pair<Value, Value>;

/// The binary relation ⟦r⟧_G ⊆ V × V, sorted by (src, dst) raw encoding and
/// duplicate-free — the NRE semantics of the paper (§2, after [5]).
using BinaryRelation = std::vector<NodePair>;

/// Interface of an NRE evaluation engine. Two implementations are provided
/// and benchmarked against each other (DESIGN.md, experiment E10).
class NreEvaluator {
 public:
  virtual ~NreEvaluator() = default;

  /// Computes ⟦r⟧_G.
  virtual BinaryRelation Eval(const NrePtr& nre, const Graph& g) const = 0;

  /// Engine name for logs and benchmark labels.
  virtual const char* name() const = 0;

  /// Nodes y with (src, y) ∈ ⟦r⟧_G. Default: filter Eval().
  virtual std::vector<Value> EvalFrom(const NrePtr& nre, const Graph& g,
                                      Value src) const;

  /// True iff (src, dst) ∈ ⟦r⟧_G.
  virtual bool Contains(const NrePtr& nre, const Graph& g, Value src,
                        Value dst) const;
};

/// Relation-algebra evaluator: recursively computes the relation of every
/// sub-expression (union / composition / reflexive-transitive closure /
/// domain test). Simple and allocation-heavy: the O(n^2)-sized intermediate
/// relations are materialized.
class NaiveNreEvaluator : public NreEvaluator {
 public:
  BinaryRelation Eval(const NrePtr& nre, const Graph& g) const override;
  const char* name() const override { return "naive-relation-algebra"; }
};

/// Product-automaton evaluator: compiles the NRE into a Thompson NFA whose
/// transitions walk edges forward/backward or test nesting predicates;
/// nesting tests are solved once by backward reachability over the product
/// (graph × NFA), then ⟦r⟧ is n forward BFS traversals. Avoids materializing
/// intermediate relations.
class AutomatonNreEvaluator : public NreEvaluator {
 public:
  BinaryRelation Eval(const NrePtr& nre, const Graph& g) const override;
  std::vector<Value> EvalFrom(const NrePtr& nre, const Graph& g,
                              Value src) const override;
  const char* name() const override { return "product-automaton"; }
};

/// Reference semantics for property tests: bounded recursive membership
/// (stars unrolled at most `fuel` times). Exact on small acyclic-ish
/// inputs when fuel >= |V| * |r|.
bool BruteForceContains(const NrePtr& nre, const Graph& g, Value src,
                        Value dst, int fuel);

/// Evaluates ⟦r⟧_G with the brute-force membership check on all node pairs.
BinaryRelation BruteForceEval(const NrePtr& nre, const Graph& g, int fuel);

}  // namespace gdx

#endif  // GDX_GRAPH_NRE_EVAL_H_
