#ifndef GDX_GRAPH_NRE_EVAL_H_
#define GDX_GRAPH_NRE_EVAL_H_

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/parallel_search.h"
#include "graph/graph.h"
#include "graph/nre.h"
#include "graph/nre_compile.h"

namespace gdx {

class GraphView;

/// A pair of graph nodes connected by an NRE path.
using NodePair = std::pair<Value, Value>;

/// The binary relation ⟦r⟧_G ⊆ V × V, sorted by (src, dst) raw encoding and
/// duplicate-free — the NRE semantics of the paper (§2, after [5]).
using BinaryRelation = std::vector<NodePair>;

/// Interface of an NRE evaluation engine. Two implementations are provided
/// and benchmarked against each other (DESIGN.md, experiment E10).
class NreEvaluator {
 public:
  virtual ~NreEvaluator() = default;

  /// Computes ⟦r⟧_G.
  virtual BinaryRelation Eval(const NrePtr& nre, const Graph& g) const = 0;

  /// Computes ⟦r⟧_G over a prebuilt CSR snapshot of G. Callers evaluating
  /// several expressions against one graph (the CNRE matcher, solution
  /// checks) build the view once and amortize it. Default: evaluate on
  /// view.graph() — engines without a view-native path stay correct.
  virtual BinaryRelation EvalOnView(const NrePtr& nre,
                                    const GraphView& view) const;

  /// Computes ⟦r⟧_G, materializing a CSR view only if evaluation actually
  /// needs one: `view` is invoked at most once, and not at all on NRE-memo
  /// hits or by engines that don't run on views — so warm-cache matcher
  /// construction skips per-graph indexing entirely. Default: ignore the
  /// factory and run Eval (correct for the legacy evaluator).
  virtual BinaryRelation EvalDeferred(
      const NrePtr& nre, const Graph& g,
      const std::function<const GraphView&()>& view) const {
    (void)view;
    return Eval(nre, g);
  }

  /// Engine name for logs and benchmark labels.
  virtual const char* name() const = 0;

  /// Nodes y with (src, y) ∈ ⟦r⟧_G. Default: filter Eval().
  virtual std::vector<Value> EvalFrom(const NrePtr& nre, const Graph& g,
                                      Value src) const;

  /// Per-source reachable sets of a whole source batch over one graph:
  /// out[i] == EvalFrom(nre, g, srcs[i]), element for element. Default:
  /// loop EvalFrom. The automaton engine overrides with the 64-way
  /// bit-parallel BFS (ISSUE 10), serving 64 sources per product pass.
  virtual std::vector<std::vector<Value>> EvalFromMany(
      const NrePtr& nre, const Graph& g,
      const std::vector<Value>& srcs) const;

  /// True iff (src, dst) ∈ ⟦r⟧_G.
  virtual bool Contains(const NrePtr& nre, const Graph& g, Value src,
                        Value dst) const;
};

/// Legacy relation-algebra evaluator: recursively computes the relation of
/// every sub-expression (union / composition / reflexive-transitive closure
/// / domain test). Simple and allocation-heavy: the O(n^2)-sized
/// intermediate relations are materialized. Kept callable (engine flag
/// EvaluatorKind::kNaive) as the reference the differential equivalence
/// test pits the compiled evaluator against.
class NaiveNreEvaluator : public NreEvaluator {
 public:
  BinaryRelation Eval(const NrePtr& nre, const Graph& g) const override;
  const char* name() const override { return "naive-relation-algebra"; }
};

/// Multi-source strategy of the compiled evaluator (ISSUE 10 tentpole
/// part 2). Both produce byte-identical relations; kPerSource is the
/// differential-test reference, exactly the pre-ISSUE-10 loop.
enum class MultiSourceMode {
  /// Round-based level-synchronous product BFS with 64 sources packed
  /// into each bitset word (the default): one pass over the reachable
  /// product region serves 64 start nodes, so dense closure-style NREs
  /// stop paying O(sources × reach).
  kBatched,
  /// One forward product BFS per source.
  kPerSource,
};

/// Telemetry seam of the batched evaluator: implemented by the engine's
/// EngineTelemetry over registry metrics (engine.nre.*). Must be
/// thread-safe — intra-solve workers share one evaluator.
class NreEvalStatsSink {
 public:
  virtual ~NreEvalStatsSink() = default;
  /// One batched multi-source BFS pass that served `sources` (<= 64).
  virtual void RecordNreBatchPass(size_t sources) = 0;
};

/// Thread-local cancellation scope for evaluator internals (ISSUE 10).
/// The PR 8 CancellationToken cannot ride the NreEvaluator interface —
/// evaluators are shared across concurrent solves — so a caller installs
/// its token per thread (exactly like the cache's ScopedCacheAttribution)
/// and the batched BFS polls it per level-synchronous round and per
/// source chunk, bounding an abort inside one long evaluation. A canceled
/// evaluation returns a truncated result; installers already treat their
/// whole computation as unusable once the token fired.
class ScopedEvalCancellation {
 public:
  explicit ScopedEvalCancellation(const CancellationToken* cancel);
  ~ScopedEvalCancellation();
  ScopedEvalCancellation(const ScopedEvalCancellation&) = delete;
  ScopedEvalCancellation& operator=(const ScopedEvalCancellation&) = delete;

  /// The calling thread's installed token (nullptr: none).
  static const CancellationToken* Current();

 private:
  const CancellationToken* previous_;
};

/// Total scratch-arena growth events across all threads (monotonic): one
/// tick whenever a thread's reusable evaluation buffers had to grow past
/// their high-water mark. Steady-state evaluation over same-sized inputs
/// adds zero — the allocation-drop counter BM_NreEval reports
/// (ISSUE 10 satellite; the buffers were allocated per call before).
uint64_t NreEvalScratchAllocs();

/// Compiled-automaton evaluator (ISSUE 3 tentpole part 3): lowers the NRE
/// once to a CompiledNre — Thompson NFA with precomputed ε-closures,
/// reversed transitions and recursively compiled nesting tests — and runs
/// product-graph BFS over state × node on a GraphView CSR snapshot with
/// 64-bit-word bitsets. Answers pair- (Contains), source- (EvalFrom),
/// source-batch (EvalFromMany) and all-pairs (Eval) queries without
/// materializing intermediate relations; multi-source queries run the
/// 64-way bit-parallel BFS unless MultiSourceMode::kPerSource pins the
/// reference loop. Compilations are never repeated: an optional
/// CompiledNreCache shares them across evaluators, threads and candidate
/// graphs (the engine wires its EngineCache in, with hit/miss counters);
/// without one the evaluator memoizes locally, keyed by the Nre's
/// precomputed structural hash, so hand-wired solvers — which evaluate
/// the same constraint NREs against thousands of tiny candidate graphs —
/// pay the lowering once too.
class AutomatonNreEvaluator : public NreEvaluator {
 public:
  /// Default cap of the local compile memo (entries, LRU-evicted).
  static constexpr size_t kDefaultLocalMemoCap = 4096;

  explicit AutomatonNreEvaluator(CompiledNreCache* compile_cache = nullptr,
                                 size_t local_memo_cap = kDefaultLocalMemoCap)
      : compile_cache_(compile_cache), local_memo_cap_(local_memo_cap) {}

  BinaryRelation Eval(const NrePtr& nre, const Graph& g) const override;
  BinaryRelation EvalOnView(const NrePtr& nre,
                            const GraphView& view) const override;
  BinaryRelation EvalDeferred(
      const NrePtr& nre, const Graph& /*g*/,
      const std::function<const GraphView&()>& view) const override {
    return EvalOnView(nre, view());
  }
  std::vector<Value> EvalFrom(const NrePtr& nre, const Graph& g,
                              Value src) const override;
  std::vector<std::vector<Value>> EvalFromMany(
      const NrePtr& nre, const Graph& g,
      const std::vector<Value>& srcs) const override;
  bool Contains(const NrePtr& nre, const Graph& g, Value src,
                Value dst) const override;
  const char* name() const override { return "compiled-automaton"; }

  void set_multi_source_mode(MultiSourceMode mode) {
    multi_source_mode_ = mode;
  }
  MultiSourceMode multi_source_mode() const { return multi_source_mode_; }

  /// Borrowed; must outlive the evaluator. Set before concurrent use.
  void set_stats_sink(NreEvalStatsSink* sink) { stats_sink_ = sink; }

  /// The compiled form of `nre` — from the shared cache when one is
  /// wired, else the local LRU memo. Public so tests and benches can
  /// observe memo identity (the LRU hottest-entry property).
  CompiledNrePtr GetCompiled(const NrePtr& nre) const;

  /// Current local-memo entry count (0 when a shared cache is wired).
  size_t local_memo_size() const {
    std::lock_guard<std::mutex> lock(memo_mutex_);
    return local_memo_.size();
  }

 private:
  CompiledNreCache* compile_cache_ = nullptr;
  MultiSourceMode multi_source_mode_ = MultiSourceMode::kBatched;
  NreEvalStatsSink* stats_sink_ = nullptr;
  /// Local fallback memo, keyed by NreRawSignature — the same collision-
  /// free key the EngineCache memo uses — with EngineCache's LRU
  /// semantics: a hit moves its key to the recency list's front, an
  /// insert over the cap evicts from the back, so hot compiled automata
  /// survive cap pressure (ISSUE 10 satellite; the memo used to clear
  /// wholesale at the cap). Guarded: intra-solve workers share one
  /// evaluator.
  struct LocalMemoEntry {
    CompiledNrePtr compiled;
    std::list<std::string>::iterator lru;
  };
  size_t local_memo_cap_ = kDefaultLocalMemoCap;
  mutable std::mutex memo_mutex_;
  mutable std::list<std::string> local_lru_;  // front = most recent
  mutable std::unordered_map<std::string, LocalMemoEntry> local_memo_;
};

/// Reference semantics for property tests: bounded recursive membership
/// (stars unrolled at most `fuel` times). Exact on small acyclic-ish
/// inputs when fuel >= |V| * |r|.
bool BruteForceContains(const NrePtr& nre, const Graph& g, Value src,
                        Value dst, int fuel);

/// Evaluates ⟦r⟧_G with the brute-force membership check on all node pairs.
BinaryRelation BruteForceEval(const NrePtr& nre, const Graph& g, int fuel);

}  // namespace gdx

#endif  // GDX_GRAPH_NRE_EVAL_H_
