#ifndef GDX_GRAPH_NRE_EVAL_H_
#define GDX_GRAPH_NRE_EVAL_H_

#include <functional>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/nre.h"
#include "graph/nre_compile.h"

namespace gdx {

class GraphView;

/// A pair of graph nodes connected by an NRE path.
using NodePair = std::pair<Value, Value>;

/// The binary relation ⟦r⟧_G ⊆ V × V, sorted by (src, dst) raw encoding and
/// duplicate-free — the NRE semantics of the paper (§2, after [5]).
using BinaryRelation = std::vector<NodePair>;

/// Interface of an NRE evaluation engine. Two implementations are provided
/// and benchmarked against each other (DESIGN.md, experiment E10).
class NreEvaluator {
 public:
  virtual ~NreEvaluator() = default;

  /// Computes ⟦r⟧_G.
  virtual BinaryRelation Eval(const NrePtr& nre, const Graph& g) const = 0;

  /// Computes ⟦r⟧_G over a prebuilt CSR snapshot of G. Callers evaluating
  /// several expressions against one graph (the CNRE matcher, solution
  /// checks) build the view once and amortize it. Default: evaluate on
  /// view.graph() — engines without a view-native path stay correct.
  virtual BinaryRelation EvalOnView(const NrePtr& nre,
                                    const GraphView& view) const;

  /// Computes ⟦r⟧_G, materializing a CSR view only if evaluation actually
  /// needs one: `view` is invoked at most once, and not at all on NRE-memo
  /// hits or by engines that don't run on views — so warm-cache matcher
  /// construction skips per-graph indexing entirely. Default: ignore the
  /// factory and run Eval (correct for the legacy evaluator).
  virtual BinaryRelation EvalDeferred(
      const NrePtr& nre, const Graph& g,
      const std::function<const GraphView&()>& view) const {
    (void)view;
    return Eval(nre, g);
  }

  /// Engine name for logs and benchmark labels.
  virtual const char* name() const = 0;

  /// Nodes y with (src, y) ∈ ⟦r⟧_G. Default: filter Eval().
  virtual std::vector<Value> EvalFrom(const NrePtr& nre, const Graph& g,
                                      Value src) const;

  /// True iff (src, dst) ∈ ⟦r⟧_G.
  virtual bool Contains(const NrePtr& nre, const Graph& g, Value src,
                        Value dst) const;
};

/// Legacy relation-algebra evaluator: recursively computes the relation of
/// every sub-expression (union / composition / reflexive-transitive closure
/// / domain test). Simple and allocation-heavy: the O(n^2)-sized
/// intermediate relations are materialized. Kept callable (engine flag
/// EvaluatorKind::kNaive) as the reference the differential equivalence
/// test pits the compiled evaluator against.
class NaiveNreEvaluator : public NreEvaluator {
 public:
  BinaryRelation Eval(const NrePtr& nre, const Graph& g) const override;
  const char* name() const override { return "naive-relation-algebra"; }
};

/// Compiled-automaton evaluator (ISSUE 3 tentpole part 3): lowers the NRE
/// once to a CompiledNre — Thompson NFA with precomputed ε-closures,
/// reversed transitions and recursively compiled nesting tests — and runs
/// product-graph BFS over state × node on a GraphView CSR snapshot with
/// 64-bit-word bitsets. Answers pair- (Contains), source- (EvalFrom) and
/// all-pairs (Eval) queries without materializing intermediate relations.
/// Compilations are never repeated: an optional CompiledNreCache shares
/// them across evaluators, threads and candidate graphs (the engine wires
/// its EngineCache in, with hit/miss counters); without one the evaluator
/// memoizes locally, keyed by the Nre's precomputed structural hash, so
/// hand-wired solvers — which evaluate the same constraint NREs against
/// thousands of tiny candidate graphs — pay the lowering once too.
class AutomatonNreEvaluator : public NreEvaluator {
 public:
  AutomatonNreEvaluator() = default;
  explicit AutomatonNreEvaluator(CompiledNreCache* compile_cache)
      : compile_cache_(compile_cache) {}

  BinaryRelation Eval(const NrePtr& nre, const Graph& g) const override;
  BinaryRelation EvalOnView(const NrePtr& nre,
                            const GraphView& view) const override;
  BinaryRelation EvalDeferred(
      const NrePtr& nre, const Graph& /*g*/,
      const std::function<const GraphView&()>& view) const override {
    return EvalOnView(nre, view());
  }
  std::vector<Value> EvalFrom(const NrePtr& nre, const Graph& g,
                              Value src) const override;
  bool Contains(const NrePtr& nre, const Graph& g, Value src,
                Value dst) const override;
  const char* name() const override { return "compiled-automaton"; }

 private:
  CompiledNrePtr GetCompiled(const NrePtr& nre) const;

  CompiledNreCache* compile_cache_ = nullptr;
  /// Local fallback memo, keyed by NreRawSignature — the same collision-
  /// free key the EngineCache memo uses. Guarded: intra-solve workers
  /// share one evaluator. Cleared wholesale at the cap — reachable only
  /// by pathological unbounded-distinct-NRE streams.
  mutable std::mutex memo_mutex_;
  mutable std::unordered_map<std::string, CompiledNrePtr> local_memo_;
};

/// Reference semantics for property tests: bounded recursive membership
/// (stars unrolled at most `fuel` times). Exact on small acyclic-ish
/// inputs when fuel >= |V| * |r|.
bool BruteForceContains(const NrePtr& nre, const Graph& g, Value src,
                        Value dst, int fuel);

/// Evaluates ⟦r⟧_G with the brute-force membership check on all node pairs.
BinaryRelation BruteForceEval(const NrePtr& nre, const Graph& g, int fuel);

}  // namespace gdx

#endif  // GDX_GRAPH_NRE_EVAL_H_
