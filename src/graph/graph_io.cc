#include "graph/graph_io.h"

#include <sstream>
#include <unordered_map>

#include "common/strings.h"

namespace gdx {
namespace {

std::string NodeToken(Value v, const Universe& universe) {
  if (v.is_null()) return "_:" + universe.NameOf(v);
  return universe.NameOf(v);
}

}  // namespace

std::string SerializeGraph(const Graph& g, const Universe& universe,
                           const Alphabet& alphabet) {
  std::ostringstream out;
  std::unordered_map<uint64_t, bool> has_edge;
  for (const Edge& e : g.edges()) {
    has_edge[e.src.raw()] = true;
    has_edge[e.dst.raw()] = true;
    out << NodeToken(e.src, universe) << " " << alphabet.NameOf(e.label)
        << " " << NodeToken(e.dst, universe) << "\n";
  }
  for (Value v : g.nodes()) {
    if (has_edge.count(v.raw()) == 0) {
      out << "node " << NodeToken(v, universe) << "\n";
    }
  }
  return out.str();
}

Result<Graph> ParseGraphText(std::string_view text, Universe& universe,
                             Alphabet& alphabet) {
  Graph g;
  std::unordered_map<std::string, Value> blanks;
  auto parse_node = [&](const std::string& token) -> Value {
    if (StartsWith(token, "_:")) {
      auto it = blanks.find(token);
      if (it != blanks.end()) return it->second;
      Value null = universe.FreshNullLabeled(token.substr(2));
      blanks.emplace(token, null);
      return null;
    }
    return universe.MakeConstant(token);
  };

  std::istringstream in{std::string(text)};
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    std::istringstream fields{std::string(stripped)};
    std::string first, second, third, extra;
    fields >> first >> second;
    if (first == "node") {
      if (second.empty()) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) + ": 'node' needs a name");
      }
      g.AddNode(parse_node(second));
      continue;
    }
    fields >> third;
    if (second.empty() || third.empty() || (fields >> extra)) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) +
          ": expected 'src label dst'");
    }
    g.AddEdge(parse_node(first), alphabet.Intern(second),
              parse_node(third));
  }
  return g;
}

}  // namespace gdx
