#ifndef GDX_GRAPH_GRAPH_IO_H_
#define GDX_GRAPH_GRAPH_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "common/universe.h"
#include "graph/graph.h"

namespace gdx {

/// Serializes a graph as whitespace-separated triples, one edge per line
/// ("src label dst"), NTriples-style: labeled nulls are written as blank
/// nodes "_:<label>". Isolated nodes are written as "node <name>" lines.
/// Deterministic (insertion order).
std::string SerializeGraph(const Graph& g, const Universe& universe,
                           const Alphabet& alphabet);

/// Parses the SerializeGraph format. Constant names are interned into
/// `universe`, labels into `alphabet`; each distinct "_:" blank label gets
/// one fresh null (consistent within the text). Lines starting with '#'
/// and blank lines are ignored.
Result<Graph> ParseGraphText(std::string_view text, Universe& universe,
                             Alphabet& alphabet);

}  // namespace gdx

#endif  // GDX_GRAPH_GRAPH_IO_H_
