#include "graph/query_parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "common/strings.h"
#include "graph/nre_parser.h"

namespace gdx {
namespace {

std::vector<std::string> SplitTopLevel(std::string_view text, char sep) {
  std::vector<std::string> out;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || (text[i] == sep && depth == 0)) {
      out.emplace_back(StripWhitespace(text.substr(start, i - start)));
      start = i + 1;
      continue;
    }
    if (text[i] == '(' || text[i] == '[') ++depth;
    if (text[i] == ')' || text[i] == ']') --depth;
  }
  return out;
}

Result<Term> ParseQueryTerm(std::string_view text, CnreQuery& query,
                            Universe& universe) {
  text = StripWhitespace(text);
  if (text.empty()) return Status::InvalidArgument("empty term");
  if (text.front() == '\'' || text.front() == '"') {
    if (text.size() < 3 || text.back() != text.front()) {
      return Status::InvalidArgument("unterminated constant literal");
    }
    return Term::Const(
        universe.MakeConstant(text.substr(1, text.size() - 2)));
  }
  for (char c : text) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return Status::InvalidArgument("invalid variable name: " +
                                     std::string(text));
    }
  }
  return Term::Var(query.InternVar(text));
}

}  // namespace

Result<CnreQuery> ParseCnreQuery(std::string_view text, Alphabet& alphabet,
                                 Universe& universe) {
  std::string body_text;
  std::string head_text;
  size_t arrow = text.find("->");
  if (arrow == std::string_view::npos) {
    body_text = std::string(StripWhitespace(text));
  } else {
    body_text = std::string(StripWhitespace(text.substr(0, arrow)));
    head_text = std::string(StripWhitespace(text.substr(arrow + 2)));
  }
  if (body_text.empty()) {
    return Status::InvalidArgument("query body is empty");
  }

  CnreQuery query;
  for (const std::string& piece : SplitTopLevel(body_text, ',')) {
    std::string_view atom_text = StripWhitespace(piece);
    if (atom_text.size() < 2 || atom_text.front() != '(' ||
        atom_text.back() != ')') {
      return Status::InvalidArgument("query atom must be parenthesized: " +
                                     std::string(atom_text));
    }
    std::vector<std::string> parts =
        SplitTopLevel(atom_text.substr(1, atom_text.size() - 2), ',');
    if (parts.size() != 3) {
      return Status::InvalidArgument(
          "query atom must be (term, nre, term): " + std::string(atom_text));
    }
    Result<Term> x = ParseQueryTerm(parts[0], query, universe);
    if (!x.ok()) return x.status();
    Result<NrePtr> nre = ParseNre(parts[1], alphabet);
    if (!nre.ok()) return nre.status();
    Result<Term> y = ParseQueryTerm(parts[2], query, universe);
    if (!y.ok()) return y.status();
    query.AddAtom(*x, std::move(nre).value(), *y);
  }

  if (!head_text.empty()) {
    std::vector<VarId> head;
    for (const std::string& name : SplitTopLevel(head_text, ',')) {
      if (name.empty()) {
        return Status::InvalidArgument("empty head variable");
      }
      auto var = query.vars().Find(name);
      if (!var.has_value()) {
        return Status::InvalidArgument("head variable '" + name +
                                       "' does not occur in the body");
      }
      head.push_back(*var);
    }
    query.SetHead(std::move(head));
  }
  return query;
}

}  // namespace gdx
