#include "graph/nre_simplify.h"

namespace gdx {
namespace {

bool IsEpsilon(const NrePtr& r) {
  return r->kind() == Nre::Kind::kEpsilon;
}
bool IsStar(const NrePtr& r) { return r->kind() == Nre::Kind::kStar; }

NrePtr SimplifyUnion(NrePtr left, NrePtr right) {
  // r + r = r.
  if (NreEquals(left, right)) return left;
  // r + r* = r* (and symmetric): L(r) ⊆ L(r*).
  if (IsStar(right) && NreEquals(left, right->child())) return right;
  if (IsStar(left) && NreEquals(right, left->child())) return left;
  // ε + r* = r* (and symmetric): ε ∈ L(r*).
  if (IsEpsilon(left) && IsStar(right)) return right;
  if (IsEpsilon(right) && IsStar(left)) return left;
  return Nre::Union(std::move(left), std::move(right));
}

NrePtr SimplifyConcat(NrePtr left, NrePtr right) {
  // ε·r = r, r·ε = r.
  if (IsEpsilon(left)) return right;
  if (IsEpsilon(right)) return left;
  // r*·r* = r*.
  if (IsStar(left) && IsStar(right) &&
      NreEquals(left->child(), right->child())) {
    return left;
  }
  return Nre::Concat(std::move(left), std::move(right));
}

NrePtr SimplifyStar(NrePtr child) {
  // ε* = ε.
  if (IsEpsilon(child)) return child;
  // (r*)* = r*.
  if (IsStar(child)) return child;
  // (ε + r)* = r* (and symmetric).
  if (child->kind() == Nre::Kind::kUnion) {
    if (IsEpsilon(child->left())) return SimplifyStar(child->right());
    if (IsEpsilon(child->right())) return SimplifyStar(child->left());
  }
  return Nre::Star(std::move(child));
}

NrePtr SimplifyNest(NrePtr child) {
  // [ε] = ε: both denote the identity relation.
  if (IsEpsilon(child)) return child;
  // [[r]] = [r]: a test of a test holds at exactly the same nodes.
  if (child->kind() == Nre::Kind::kNest) return child;
  return Nre::Nest(std::move(child));
}

}  // namespace

NrePtr SimplifyNre(const NrePtr& nre) {
  switch (nre->kind()) {
    case Nre::Kind::kEpsilon:
    case Nre::Kind::kSymbol:
    case Nre::Kind::kInverse:
      return nre;
    case Nre::Kind::kUnion:
      return SimplifyUnion(SimplifyNre(nre->left()),
                           SimplifyNre(nre->right()));
    case Nre::Kind::kConcat:
      return SimplifyConcat(SimplifyNre(nre->left()),
                            SimplifyNre(nre->right()));
    case Nre::Kind::kStar:
      return SimplifyStar(SimplifyNre(nre->child()));
    case Nre::Kind::kNest:
      return SimplifyNest(SimplifyNre(nre->child()));
  }
  return nre;
}

}  // namespace gdx
