#include "graph/dot_export.h"

#include <sstream>
#include <unordered_set>

namespace gdx {
namespace {

/// DOT-escapes a label (quotes and backslashes).
std::string Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Emits one node declaration; nulls are dashed when configured.
void EmitNode(std::ostringstream& out, Value v, const Universe& universe,
              const DotOptions& options) {
  out << "  \"" << Escape(universe.NameOf(v)) << "\"";
  if (options.distinguish_nulls && v.is_null()) {
    out << " [style=dashed]";
  }
  out << ";\n";
}

void EmitHeader(std::ostringstream& out, const DotOptions& options) {
  out << "digraph \"" << Escape(options.graph_name) << "\" {\n";
  if (options.rankdir_lr) out << "  rankdir=LR;\n";
  out << "  node [shape=circle, fontsize=11];\n";
}

}  // namespace

std::string ToDot(const Graph& g, const Universe& universe,
                  const Alphabet& alphabet, const DotOptions& options) {
  std::ostringstream out;
  EmitHeader(out, options);
  for (Value v : g.nodes()) EmitNode(out, v, universe, options);
  for (const Edge& e : g.edges()) {
    const std::string& label = alphabet.NameOf(e.label);
    out << "  \"" << Escape(universe.NameOf(e.src)) << "\" -> \""
        << Escape(universe.NameOf(e.dst)) << "\" [label=\""
        << Escape(label) << "\"";
    if (options.dotted_sameas && label == "sameAs") {
      out << ", style=dotted";
    }
    out << "];\n";
  }
  out << "}\n";
  return out.str();
}

std::string ToDot(const GraphPattern& pi, const Universe& universe,
                  const Alphabet& alphabet, const DotOptions& options) {
  std::ostringstream out;
  EmitHeader(out, options);
  for (Value v : pi.nodes()) EmitNode(out, v, universe, options);
  for (const PatternEdge& e : pi.edges()) {
    out << "  \"" << Escape(universe.NameOf(e.src)) << "\" -> \""
        << Escape(universe.NameOf(e.dst)) << "\" [label=\""
        << Escape(e.nre->ToString(alphabet)) << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace gdx
