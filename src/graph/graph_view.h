#ifndef GDX_GRAPH_GRAPH_VIEW_H_
#define GDX_GRAPH_GRAPH_VIEW_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace gdx {

/// Immutable CSR snapshot of a Graph (ISSUE 3 tentpole part 1): dense
/// uint32_t node ids in nodes() insertion order and, per edge label,
/// compressed-sparse-row forward and backward adjacency. Built in one pass;
/// every evaluator traversal then runs on flat arrays — no hash lookups on
/// the hot path. The view borrows the Graph: it is valid only while the
/// graph outlives it unmutated (mutation invalidates node/edge vectors).
class GraphView {
 public:
  static constexpr uint32_t kInvalidNode = UINT32_MAX;

  /// Contiguous run of neighbor node ids (one CSR row).
  struct NeighborSpan {
    const uint32_t* data = nullptr;
    size_t count = 0;
    const uint32_t* begin() const { return data; }
    const uint32_t* end() const { return data + count; }
    size_t size() const { return count; }
    bool empty() const { return count == 0; }
  };

  explicit GraphView(const Graph& g);

  const Graph& graph() const { return *graph_; }
  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return graph_->num_edges(); }

  /// Dense id of `v`, or kInvalidNode when the graph has no such node.
  uint32_t IdOf(Value v) const {
    auto it = id_of_.find(v.raw());
    return it == id_of_.end() ? kInvalidNode : it->second;
  }

  Value NodeAt(uint32_t id) const { return graph_->nodes()[id]; }

  /// Successor ids of `node` over `label` (forward CSR row; edge insertion
  /// order within the row).
  NeighborSpan Out(SymbolId label, uint32_t node) const {
    const uint32_t slot = SlotOf(label);
    if (slot == kNoSlot) return {};
    return Row(slot, 0, node);
  }

  /// Predecessor ids of `node` over `label` (backward CSR row).
  NeighborSpan In(SymbolId label, uint32_t node) const {
    const uint32_t slot = SlotOf(label);
    if (slot == kNoSlot) return {};
    return Row(slot, 1, node);
  }

 private:

  static constexpr uint32_t kNoSlot = UINT32_MAX;

  /// Interned SymbolIds are small and dense, so the label->slot mapping is
  /// a flat array — no hashing on the traversal hot path. All CSR data
  /// lives in two shared backing arrays (offsets_/targets_), so building a
  /// view costs a handful of allocations regardless of label count —
  /// matchers over tiny candidate graphs build views by the thousand.
  uint32_t SlotOf(SymbolId label) const {
    if (label >= slot_of_label_.size()) return kNoSlot;
    return slot_of_label_[label];
  }

  /// Base index of the slot's forward (direction 0) or backward
  /// (direction 1) offsets run within offsets_ (num_nodes + 1 entries).
  size_t OffsetsBase(uint32_t slot, int direction) const {
    return (size_t{slot} * 2 + direction) * (num_nodes_ + 1);
  }

  NeighborSpan Row(uint32_t slot, int direction, uint32_t node) const {
    const size_t base = OffsetsBase(slot, direction);
    const uint32_t begin = offsets_[base + node];
    const uint32_t end = offsets_[base + node + 1];
    return NeighborSpan{targets_.data() + begin, end - begin};
  }

  const Graph* graph_;
  size_t num_nodes_;
  std::unordered_map<uint64_t, uint32_t> id_of_;
  std::vector<uint32_t> slot_of_label_;  // SymbolId -> slot
  std::vector<uint32_t> offsets_;        // slots*2 runs of (num_nodes+1)
  std::vector<uint32_t> targets_;        // absolute indices; 2*num_edges
};

}  // namespace gdx

#endif  // GDX_GRAPH_GRAPH_VIEW_H_
