#ifndef GDX_GRAPH_NRE_PARSER_H_
#define GDX_GRAPH_NRE_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "graph/nre.h"

namespace gdx {

/// Parses the textual NRE syntax used throughout examples and tests:
///
///   expr   := term ('+' term)*          -- disjunction
///   term   := factor ('.' factor)*      -- concatenation
///   factor := atom ('*' | '-')*         -- Kleene star / backward edge
///   atom   := IDENT | 'eps' | '(' expr ')' | '[' expr ']'
///
/// Examples: "f . f*", "a + b", "f . f* [h] . f- . (f-)*", "t1 + f1".
/// '-' (inverse) is only legal directly on a symbol, per the paper's
/// grammar (a⁻ with a ∈ Σ). New symbols are interned into `alphabet`.
Result<NrePtr> ParseNre(std::string_view text, Alphabet& alphabet);

}  // namespace gdx

#endif  // GDX_GRAPH_NRE_PARSER_H_
