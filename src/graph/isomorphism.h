#ifndef GDX_GRAPH_ISOMORPHISM_H_
#define GDX_GRAPH_ISOMORPHISM_H_

#include <vector>

#include "graph/graph.h"

namespace gdx {

/// Decides whether two graphs are isomorphic *up to null renaming*:
/// constants must map to themselves (they are global identifiers), labeled
/// nulls bijectively onto labeled nulls preserving all edges. This is the
/// right equality for chase outputs and enumerated solutions, whose null
/// names are generation artifacts.
bool IsomorphicUpToNulls(const Graph& a, const Graph& b);

/// Removes graphs that are isomorphic (up to null renaming) to an earlier
/// element, preserving first-occurrence order.
std::vector<Graph> DeduplicateUpToIsomorphism(std::vector<Graph> graphs);

}  // namespace gdx

#endif  // GDX_GRAPH_ISOMORPHISM_H_
