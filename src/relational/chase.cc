#include "relational/chase.h"

#include <unordered_set>

namespace gdx {

std::vector<VarId> RelTgd::ExistentialVars() const {
  std::vector<bool> in_body(body.num_vars(), false);
  for (const RelAtom& atom : body.atoms()) {
    for (const Term& t : atom.terms) {
      if (t.is_var()) in_body[t.var()] = true;
    }
  }
  std::vector<bool> seen(body.num_vars(), false);
  std::vector<VarId> existential;
  for (const RelAtom& atom : head) {
    for (const Term& t : atom.terms) {
      if (t.is_var() && !in_body[t.var()] && !seen[t.var()]) {
        seen[t.var()] = true;
        existential.push_back(t.var());
      }
    }
  }
  return existential;
}

Instance ChaseStTgds(const Instance& source, const std::vector<RelTgd>& tgds,
                     const Schema* target_schema, Universe& universe,
                     RelChaseStats* stats) {
  Instance target(target_schema);
  for (const RelTgd& tgd : tgds) {
    std::vector<VarId> existential = tgd.ExistentialVars();
    FindCqMatches(tgd.body, source, [&](const Binding& match) {
      // One fresh null per existential variable per trigger.
      Binding binding = match;
      for (VarId v : existential) binding[v] = universe.FreshNull();
      for (const RelAtom& atom : tgd.head) {
        Tuple fact;
        fact.reserve(atom.terms.size());
        for (const Term& t : atom.terms) {
          fact.push_back(t.is_const() ? t.constant() : *binding[t.var()]);
        }
        Status st = target.AddFact(atom.relation, std::move(fact));
        (void)st;  // arity validated at construction time
        if (stats != nullptr) ++stats->facts_added;
      }
      if (stats != nullptr) ++stats->triggers_fired;
      return true;
    });
  }
  return target;
}

Status ChaseEgds(Instance& instance, const std::vector<RelEgd>& egds,
                 RelChaseStats* stats) {
  for (;;) {
    ValuePartition partition;
    bool merged_any = false;
    Status failure = Status::Ok();
    for (const RelEgd& egd : egds) {
      FindCqMatches(egd.body, instance, [&](const Binding& match) {
        Value a = *match[egd.x1];
        Value b = *match[egd.x2];
        if (partition.Find(a) == partition.Find(b)) return true;
        Status st = partition.Merge(a, b);
        if (!st.ok()) {
          failure = st;
          return false;  // stop: chase failed
        }
        merged_any = true;
        if (stats != nullptr) ++stats->merges;
        return true;
      });
      if (!failure.ok()) return failure;
    }
    if (!merged_any) return Status::Ok();
    instance.RewriteValues([&](Value v) { return partition.Find(v); });
    if (stats != nullptr) ++stats->egd_rounds;
  }
}

Result<Instance> RunRelationalExchange(const Instance& source,
                                       const std::vector<RelTgd>& tgds,
                                       const std::vector<RelEgd>& egds,
                                       const Schema* target_schema,
                                       Universe& universe,
                                       RelChaseStats* stats) {
  Instance target = ChaseStTgds(source, tgds, target_schema, universe, stats);
  Status st = ChaseEgds(target, egds, stats);
  if (!st.ok()) return st;
  return target;
}

}  // namespace gdx
