#ifndef GDX_RELATIONAL_CQ_H_
#define GDX_RELATIONAL_CQ_H_

#include <string>
#include <vector>

#include "common/term.h"
#include "relational/schema.h"

namespace gdx {

/// One atom R(t1, ..., tk) of a relational conjunctive query.
struct RelAtom {
  RelationId relation;
  std::vector<Term> terms;
};

/// A conjunctive query over a relational schema. The paper's source queries
/// use variables only; constants are nevertheless supported (useful in
/// tests). Head variables select the output columns; an empty head makes
/// the query Boolean.
class ConjunctiveQuery {
 public:
  explicit ConjunctiveQuery(const Schema* schema) : schema_(schema) {}

  const Schema& schema() const { return *schema_; }

  VarId InternVar(std::string_view name) { return vars_.Intern(name); }
  const VarTable& vars() const { return vars_; }
  VarTable& vars() { return vars_; }

  /// Replaces the variable table wholesale — used when lowering a CNRE
  /// dependency whose atoms reuse another formula's variable ids.
  void SetVarTable(VarTable vars) { vars_ = std::move(vars); }

  void AddAtom(RelAtom atom) { atoms_.push_back(std::move(atom)); }
  const std::vector<RelAtom>& atoms() const { return atoms_; }

  void SetHead(std::vector<VarId> head) { head_ = std::move(head); }
  const std::vector<VarId>& head() const { return head_; }

  size_t num_vars() const { return vars_.size(); }

 private:
  const Schema* schema_;
  VarTable vars_;
  std::vector<RelAtom> atoms_;
  std::vector<VarId> head_;
};

}  // namespace gdx

#endif  // GDX_RELATIONAL_CQ_H_
