#include "relational/eval.h"

#include <unordered_set>

namespace gdx {
namespace {

/// Attempts to unify one atom's terms against a fact under the current
/// binding. Returns the list of variables newly bound (for undo), or
/// nullopt if unification fails.
std::optional<std::vector<VarId>> UnifyAtom(const RelAtom& atom,
                                            const Tuple& fact,
                                            Binding& binding) {
  std::vector<VarId> newly_bound;
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& t = atom.terms[i];
    if (t.is_const()) {
      if (t.constant() != fact[i]) {
        for (VarId v : newly_bound) binding[v].reset();
        return std::nullopt;
      }
      continue;
    }
    VarId v = t.var();
    if (binding[v].has_value()) {
      if (*binding[v] != fact[i]) {
        for (VarId u : newly_bound) binding[u].reset();
        return std::nullopt;
      }
    } else {
      binding[v] = fact[i];
      newly_bound.push_back(v);
    }
  }
  return newly_bound;
}

bool Search(const ConjunctiveQuery& query, const Instance& instance,
            size_t atom_index, Binding& binding,
            const std::function<bool(const Binding&)>& callback) {
  if (atom_index == query.atoms().size()) {
    return callback(binding);
  }
  const RelAtom& atom = query.atoms()[atom_index];
  for (const Tuple& fact : instance.facts(atom.relation)) {
    auto bound = UnifyAtom(atom, fact, binding);
    if (!bound.has_value()) continue;
    bool keep_going =
        Search(query, instance, atom_index + 1, binding, callback);
    for (VarId v : *bound) binding[v].reset();
    if (!keep_going) return false;
  }
  return true;
}

}  // namespace

void FindCqMatches(const ConjunctiveQuery& query, const Instance& instance,
                   const std::function<bool(const Binding&)>& callback) {
  Binding binding(query.num_vars());
  Search(query, instance, 0, binding, callback);
}

std::vector<Tuple> EvaluateCq(const ConjunctiveQuery& query,
                              const Instance& instance) {
  std::vector<Tuple> out;
  std::unordered_set<Tuple, ValueVecHash> seen;
  FindCqMatches(query, instance, [&](const Binding& binding) {
    Tuple row;
    row.reserve(query.head().size());
    for (VarId v : query.head()) row.push_back(*binding[v]);
    if (seen.insert(row).second) out.push_back(std::move(row));
    return true;
  });
  return out;
}

bool CqIsSatisfiable(const ConjunctiveQuery& query,
                     const Instance& instance) {
  bool found = false;
  FindCqMatches(query, instance, [&](const Binding&) {
    found = true;
    return false;
  });
  return found;
}

std::vector<Tuple> EvaluateCqNaive(const ConjunctiveQuery& query,
                                   const Instance& instance) {
  // Active domain in first-seen order.
  std::vector<Value> adom;
  std::unordered_set<uint64_t> seen_values;
  for (RelationId rel = 0; rel < instance.schema().size(); ++rel) {
    for (const Tuple& t : instance.facts(rel)) {
      for (Value v : t) {
        if (seen_values.insert(v.raw()).second) adom.push_back(v);
      }
    }
  }
  std::vector<Tuple> out;
  std::unordered_set<Tuple, ValueVecHash> seen_rows;
  const size_t n = query.num_vars();
  std::vector<size_t> odometer(n, 0);
  if (adom.empty() && n > 0) return out;
  for (;;) {
    Binding binding(n);
    for (size_t i = 0; i < n; ++i) binding[i] = adom[odometer[i]];
    bool holds = true;
    for (const RelAtom& atom : query.atoms()) {
      Tuple fact;
      fact.reserve(atom.terms.size());
      for (const Term& t : atom.terms) {
        fact.push_back(t.is_const() ? t.constant() : *binding[t.var()]);
      }
      if (!instance.Contains(atom.relation, fact)) {
        holds = false;
        break;
      }
    }
    if (holds) {
      Tuple row;
      row.reserve(query.head().size());
      for (VarId v : query.head()) row.push_back(*binding[v]);
      if (seen_rows.insert(row).second) out.push_back(std::move(row));
    }
    // Advance the odometer.
    size_t i = 0;
    while (i < n && ++odometer[i] == adom.size()) {
      odometer[i] = 0;
      ++i;
    }
    if (i == n || n == 0) break;
  }
  return out;
}

}  // namespace gdx
