#ifndef GDX_RELATIONAL_INSTANCE_H_
#define GDX_RELATIONAL_INSTANCE_H_

#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "relational/schema.h"

namespace gdx {

/// A relational tuple over the value universe (constants and, in chased
/// target instances, labeled nulls).
using Tuple = std::vector<Value>;

/// An instance of a Schema: for each relation symbol, a duplicate-free set
/// of tuples in deterministic insertion order. The schema may keep growing
/// after the instance is created (e.g. while parsing a scenario file);
/// internal storage tracks it lazily.
class Instance {
 public:
  explicit Instance(const Schema* schema)
      : schema_(schema),
        facts_(schema->size()),
        index_(schema->size()) {}

  const Schema& schema() const { return *schema_; }

  /// Adds a fact; checks arity; duplicate facts are silently ignored.
  Status AddFact(RelationId rel, Tuple t) {
    if (rel >= schema_->size()) {
      return Status::InvalidArgument("unknown relation id");
    }
    EnsureCapacity();
    if (t.size() != schema_->decl(rel).arity) {
      return Status::InvalidArgument(
          "arity mismatch for relation " + schema_->decl(rel).name);
    }
    if (index_[rel].insert(t).second) {
      facts_[rel].push_back(std::move(t));
    }
    return Status::Ok();
  }

  bool Contains(RelationId rel, const Tuple& t) const {
    return rel < index_.size() && index_[rel].count(t) > 0;
  }

  const std::vector<Tuple>& facts(RelationId rel) const {
    if (rel >= facts_.size()) return EmptyFactList();
    return facts_[rel];
  }

  size_t TotalFacts() const {
    size_t n = 0;
    for (const auto& f : facts_) n += f.size();
    return n;
  }

  /// Replaces every value by `rewrite(value)` (used by the egd chase after
  /// merging nulls). Re-deduplicates.
  template <typename Fn>
  void RewriteValues(Fn rewrite) {
    for (size_t rel = 0; rel < facts_.size(); ++rel) {
      std::vector<Tuple> old = std::move(facts_[rel]);
      facts_[rel].clear();
      index_[rel].clear();
      for (Tuple& t : old) {
        for (Value& v : t) v = rewrite(v);
        if (index_[rel].insert(t).second) {
          facts_[rel].push_back(std::move(t));
        }
      }
    }
  }

 private:
  void EnsureCapacity() {
    if (facts_.size() < schema_->size()) {
      facts_.resize(schema_->size());
      index_.resize(schema_->size());
    }
  }

  static const std::vector<Tuple>& EmptyFactList() {
    static const std::vector<Tuple>* empty = new std::vector<Tuple>();
    return *empty;
  }

  const Schema* schema_;
  std::vector<std::vector<Tuple>> facts_;
  std::vector<std::unordered_set<Tuple, ValueVecHash>> index_;
};

}  // namespace gdx

#endif  // GDX_RELATIONAL_INSTANCE_H_
