#ifndef GDX_RELATIONAL_SCHEMA_H_
#define GDX_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace gdx {

/// Dense id of a relation symbol within a Schema.
using RelationId = uint32_t;

/// Declaration of one relation symbol: a name and a fixed arity.
struct RelationDecl {
  std::string name;
  size_t arity = 0;
};

/// A relational source schema R: a finite collection of relation symbols.
class Schema {
 public:
  /// Adds a relation; fails if the name is already declared.
  Result<RelationId> AddRelation(std::string name, size_t arity) {
    if (by_name_.count(name) > 0) {
      return Status::InvalidArgument("duplicate relation: " + name);
    }
    RelationId id = static_cast<RelationId>(decls_.size());
    by_name_.emplace(name, id);
    decls_.push_back(RelationDecl{std::move(name), arity});
    return id;
  }

  std::optional<RelationId> Find(const std::string& name) const {
    auto it = by_name_.find(name);
    if (it == by_name_.end()) return std::nullopt;
    return it->second;
  }

  const RelationDecl& decl(RelationId id) const { return decls_[id]; }
  size_t size() const { return decls_.size(); }

 private:
  std::vector<RelationDecl> decls_;
  std::unordered_map<std::string, RelationId> by_name_;
};

}  // namespace gdx

#endif  // GDX_RELATIONAL_SCHEMA_H_
