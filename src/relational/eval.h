#ifndef GDX_RELATIONAL_EVAL_H_
#define GDX_RELATIONAL_EVAL_H_

#include <functional>
#include <optional>
#include <vector>

#include "relational/cq.h"
#include "relational/instance.h"

namespace gdx {

/// A (partial) assignment of query variables to values.
using Binding = std::vector<std::optional<Value>>;

/// Invokes `callback` once per homomorphism from the query's atoms into the
/// instance (every query variable bound). Deterministic order. The callback
/// returns false to stop the enumeration early.
void FindCqMatches(const ConjunctiveQuery& query, const Instance& instance,
                   const std::function<bool(const Binding&)>& callback);

/// Evaluates the query: the set of head-variable tuples over all matches,
/// duplicate-free, in first-derivation order.
std::vector<Tuple> EvaluateCq(const ConjunctiveQuery& query,
                              const Instance& instance);

/// True if the query has at least one match (Boolean evaluation).
bool CqIsSatisfiable(const ConjunctiveQuery& query, const Instance& instance);

/// Reference semantics for property tests: evaluates the query by
/// enumerating every assignment of variables to active-domain values
/// (|adom|^|vars| candidates) and filtering. Exponential — tests only.
std::vector<Tuple> EvaluateCqNaive(const ConjunctiveQuery& query,
                                   const Instance& instance);

}  // namespace gdx

#endif  // GDX_RELATIONAL_EVAL_H_
