#ifndef GDX_RELATIONAL_CHASE_H_
#define GDX_RELATIONAL_CHASE_H_

#include <vector>

#include "common/status.h"
#include "common/universe.h"
#include "common/value_partition.h"
#include "relational/cq.h"
#include "relational/eval.h"
#include "relational/instance.h"

namespace gdx {

/// A source-to-target tgd in the purely relational setting (paper §3.1):
/// ∀x φ_R(x) → ∃y ψ(x, y), with φ_R the `body` conjunctive query over the
/// source schema and ψ the `head` atoms over the target schema. Body and
/// head share the body's VarTable; head variables that appear in no body
/// atom are existential.
struct RelTgd {
  RelTgd(const Schema* source_schema, const Schema* target_schema)
      : body(source_schema), target_schema(target_schema) {}

  ConjunctiveQuery body;
  std::vector<RelAtom> head;
  const Schema* target_schema;

  /// Variables appearing in the head but in no body atom (the ∃y vector).
  std::vector<VarId> ExistentialVars() const;
};

/// A target egd ∀x ψ(x) → x1 = x2 over the target schema.
struct RelEgd {
  explicit RelEgd(const Schema* target_schema) : body(target_schema) {}

  ConjunctiveQuery body;
  VarId x1 = 0;
  VarId x2 = 0;
};

/// Statistics of a chase run.
struct RelChaseStats {
  size_t triggers_fired = 0;   // s-t tgd triggers instantiated
  size_t facts_added = 0;      // target facts created
  size_t egd_rounds = 0;       // egd fixpoint iterations
  size_t merges = 0;           // value identifications applied
};

/// Oblivious source-to-target chase: fires every tgd once per body match,
/// inventing one fresh labeled null per existential variable per trigger.
/// Returns the chased target instance (always succeeds; terminates because
/// s-t tgds only match the finite source).
Instance ChaseStTgds(const Instance& source, const std::vector<RelTgd>& tgds,
                     const Schema* target_schema, Universe& universe,
                     RelChaseStats* stats = nullptr);

/// Egd chase to fixpoint, merging values (null↤constant preferred). Fails
/// with FAILED_PRECONDITION iff two distinct constants must be equated —
/// the classical "chase failure" meaning no solution exists.
Status ChaseEgds(Instance& instance, const std::vector<RelEgd>& egds,
                 RelChaseStats* stats = nullptr);

/// Full relational data-exchange chase: s-t tgds then egds.
Result<Instance> RunRelationalExchange(const Instance& source,
                                       const std::vector<RelTgd>& tgds,
                                       const std::vector<RelEgd>& egds,
                                       const Schema* target_schema,
                                       Universe& universe,
                                       RelChaseStats* stats = nullptr);

}  // namespace gdx

#endif  // GDX_RELATIONAL_CHASE_H_
