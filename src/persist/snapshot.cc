#include "persist/snapshot.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "chase/reliance.h"
#include "common/interner.h"
#include "obs/trace.h"
#include "persist/wire.h"

namespace gdx {
namespace {

// Section identifiers (four ASCII bytes, read/written little-endian so
// the id bytes appear in the file in the order they are spelled here).
constexpr uint32_t FourCC(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<uint8_t>(a)) |
         static_cast<uint32_t>(static_cast<uint8_t>(b)) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(c)) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(d)) << 24;
}
constexpr uint32_t kSecStrings = FourCC('S', 'T', 'R', 'T');
constexpr uint32_t kSecNreMemo = FourCC('N', 'R', 'E', 'M');
constexpr uint32_t kSecAnswerMemo = FourCC('A', 'N', 'S', 'M');
constexpr uint32_t kSecAutomata = FourCC('C', 'A', 'U', 'T');
constexpr uint32_t kSecChased = FourCC('C', 'H', 'S', 'E');
constexpr uint32_t kSecReliance = FourCC('R', 'E', 'L', 'I');

/// Bytes per section-table entry: id u32 + offset u64 + length u64 +
/// checksum u64.
constexpr size_t kSectionEntryBytes = 4 + 8 + 8 + 8;
/// Header: magic (8 raw bytes) + version u32 + section count u32 +
/// section-table checksum u64. With the magic and version compared
/// directly, the table covered by the header checksum, and every payload
/// covered by its section checksum, no byte of a well-formed file is
/// outside some integrity check.
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8;

/// Nesting-test sub-automata deeper than this are rejected: real NREs
/// nest a handful of levels; a crafted file must not recurse the decoder
/// off the stack.
constexpr int kMaxAutomatonDepth = 128;

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("snapshot: " + what);
}

/// A raw value encoding is valid iff the id survives the uint32 narrow
/// (Value::FromRaw's precondition).
bool ValidValueRaw(uint64_t raw) { return (raw >> 1) <= 0xffffffffull; }

// --- graphs ----------------------------------------------------------------

void EncodeGraph(const Graph& g, WireWriter* out) {
  out->PutU64(g.num_nodes());
  for (Value v : g.nodes()) out->PutU64(v.raw());
  out->PutU64(g.num_edges());
  for (const Edge& e : g.edges()) {
    out->PutU64(e.src.raw());
    out->PutU32(e.label);
    out->PutU64(e.dst.raw());
  }
}

bool DecodeGraph(WireReader* in, Graph* out, Status* error) {
  uint64_t num_nodes;
  if (!in->ReadU64(&num_nodes)) {
    *error = Corrupt("truncated graph node count");
    return false;
  }
  for (uint64_t i = 0; i < num_nodes; ++i) {
    uint64_t raw;
    if (!in->ReadU64(&raw)) {
      *error = Corrupt("truncated graph node");
      return false;
    }
    if (!ValidValueRaw(raw)) {
      *error = Corrupt("graph node id out of range");
      return false;
    }
    out->AddNode(Value::FromRaw(raw));
  }
  uint64_t num_edges;
  if (!in->ReadU64(&num_edges)) {
    *error = Corrupt("truncated graph edge count");
    return false;
  }
  for (uint64_t i = 0; i < num_edges; ++i) {
    uint64_t src, dst;
    uint32_t label;
    if (!in->ReadU64(&src) || !in->ReadU32(&label) || !in->ReadU64(&dst)) {
      *error = Corrupt("truncated graph edge");
      return false;
    }
    if (!ValidValueRaw(src) || !ValidValueRaw(dst)) {
      *error = Corrupt("graph edge endpoint out of range");
      return false;
    }
    out->AddEdge(Value::FromRaw(src), label, Value::FromRaw(dst));
  }
  return true;
}

// --- compiled automata -----------------------------------------------------

void EncodeTransitions(
    const std::vector<std::pair<uint32_t, uint32_t>>& transitions,
    WireWriter* out) {
  out->PutU32(static_cast<uint32_t>(transitions.size()));
  for (const auto& [payload, state] : transitions) {
    out->PutU32(payload);
    out->PutU32(state);
  }
}

bool DecodeTransitions(WireReader* in,
                       std::vector<std::pair<uint32_t, uint32_t>>* out) {
  uint32_t count;
  if (!in->ReadU32(&count)) return false;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t payload, state;
    if (!in->ReadU32(&payload) || !in->ReadU32(&state)) return false;
    out->emplace_back(payload, state);
  }
  return true;
}

void EncodeAutomaton(const CompiledNre& automaton, WireWriter* out) {
  out->PutU32(automaton.start());
  out->PutU32(static_cast<uint32_t>(automaton.num_states()));
  out->PutU32(static_cast<uint32_t>(automaton.tests().size()));
  // Forward transitions only: the reversed lists are redundant, and
  // FromParts re-derives them in the canonical order on decode.
  for (uint32_t s = 0; s < automaton.num_states(); ++s) {
    const CompiledNre::State& st = automaton.Forward(s);
    EncodeTransitions(st.tests, out);
    EncodeTransitions(st.fwd, out);
    EncodeTransitions(st.bwd, out);
  }
  for (uint32_t s = 0; s < automaton.num_states(); ++s) {
    out->PutU8(automaton.Accepting(s) ? 1 : 0);
  }
  for (const CompiledNrePtr& test : automaton.tests()) {
    EncodeAutomaton(*test, out);
  }
}

bool DecodeStates(WireReader* in, uint32_t num_states,
                  std::vector<CompiledNre::State>* out) {
  for (uint32_t s = 0; s < num_states; ++s) {
    CompiledNre::State st;
    if (!DecodeTransitions(in, &st.tests) ||
        !DecodeTransitions(in, &st.fwd) ||
        !DecodeTransitions(in, &st.bwd)) {
      return false;
    }
    out->push_back(std::move(st));
  }
  return true;
}

CompiledNrePtr DecodeAutomaton(WireReader* in, int depth, Status* error) {
  if (depth > kMaxAutomatonDepth) {
    *error = Corrupt("automaton nesting too deep");
    return nullptr;
  }
  uint32_t start, num_states, num_tests;
  if (!in->ReadU32(&start) || !in->ReadU32(&num_states) ||
      !in->ReadU32(&num_tests)) {
    *error = Corrupt("truncated automaton header");
    return nullptr;
  }
  std::vector<CompiledNre::State> states;
  if (!DecodeStates(in, num_states, &states)) {
    *error = Corrupt("truncated automaton transitions");
    return nullptr;
  }
  std::vector<uint8_t> accepting;
  for (uint32_t s = 0; s < num_states; ++s) {
    uint8_t flag;
    if (!in->ReadU8(&flag)) {
      *error = Corrupt("truncated accepting flags");
      return nullptr;
    }
    accepting.push_back(flag);
  }
  std::vector<CompiledNrePtr> tests;
  for (uint32_t t = 0; t < num_tests; ++t) {
    CompiledNrePtr test = DecodeAutomaton(in, depth + 1, error);
    if (test == nullptr) return nullptr;
    tests.push_back(std::move(test));
  }
  // FromParts enforces every structural invariant (index ranges,
  // canonical transition order, flag values) and derives the reversed
  // transition lists.
  CompiledNrePtr automaton =
      CompiledNre::FromParts(start, std::move(states),
                             std::move(accepting), std::move(tests));
  if (automaton == nullptr) {
    *error = Corrupt("automaton fails structural validation");
  }
  return automaton;
}

// --- NREs (chased-pattern edge labels) -------------------------------------

/// NRE trees travel as postfix (RPN) op streams: leaves push, operators
/// pop their operands. Both codec directions are iterative, so a crafted
/// file can make the decode *fail* but never recurse the decoder off the
/// stack — and legitimate deep trees (long concatenation chains) have no
/// artificial depth ceiling.
void EncodeNre(const Nre& root, WireWriter* out) {
  std::vector<std::pair<const Nre*, bool>> walk;  // (node, children done)
  std::vector<const Nre*> postfix;
  walk.emplace_back(&root, false);
  while (!walk.empty()) {
    auto [node, done] = walk.back();
    walk.pop_back();
    if (done) {
      postfix.push_back(node);
      continue;
    }
    walk.emplace_back(node, true);
    switch (node->kind()) {
      case Nre::Kind::kUnion:
      case Nre::Kind::kConcat:
        // Left below right on the stack: left is emitted first.
        walk.emplace_back(node->right().get(), false);
        walk.emplace_back(node->left().get(), false);
        break;
      case Nre::Kind::kStar:
      case Nre::Kind::kNest:
        walk.emplace_back(node->child().get(), false);
        break;
      default:
        break;  // leaves
    }
  }
  out->PutU32(static_cast<uint32_t>(postfix.size()));
  for (const Nre* node : postfix) {
    out->PutU8(static_cast<uint8_t>(node->kind()));
    if (node->kind() == Nre::Kind::kSymbol ||
        node->kind() == Nre::Kind::kInverse) {
      out->PutU32(node->symbol());
    }
  }
}

bool DecodeNre(WireReader* in, NrePtr* out, Status* error) {
  uint32_t count;
  if (!in->ReadU32(&count)) {
    *error = Corrupt("truncated NRE op count");
    return false;
  }
  if (count == 0) {
    *error = Corrupt("empty NRE");
    return false;
  }
  std::vector<NrePtr> stack;
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t kind;
    if (!in->ReadU8(&kind)) {
      *error = Corrupt("truncated NRE op");
      return false;
    }
    switch (static_cast<Nre::Kind>(kind)) {
      case Nre::Kind::kEpsilon:
        stack.push_back(Nre::Epsilon());
        break;
      case Nre::Kind::kSymbol:
      case Nre::Kind::kInverse: {
        uint32_t symbol;
        if (!in->ReadU32(&symbol)) {
          *error = Corrupt("truncated NRE symbol");
          return false;
        }
        stack.push_back(static_cast<Nre::Kind>(kind) == Nre::Kind::kSymbol
                            ? Nre::Symbol(symbol)
                            : Nre::Inverse(symbol));
        break;
      }
      case Nre::Kind::kUnion:
      case Nre::Kind::kConcat: {
        if (stack.size() < 2) {
          *error = Corrupt("NRE operator underflows its operand stack");
          return false;
        }
        NrePtr right = std::move(stack.back());
        stack.pop_back();
        NrePtr left = std::move(stack.back());
        stack.pop_back();
        stack.push_back(static_cast<Nre::Kind>(kind) == Nre::Kind::kUnion
                            ? Nre::Union(std::move(left), std::move(right))
                            : Nre::Concat(std::move(left), std::move(right)));
        break;
      }
      case Nre::Kind::kStar:
      case Nre::Kind::kNest: {
        if (stack.empty()) {
          *error = Corrupt("NRE operator underflows its operand stack");
          return false;
        }
        NrePtr child = std::move(stack.back());
        stack.pop_back();
        stack.push_back(static_cast<Nre::Kind>(kind) == Nre::Kind::kStar
                            ? Nre::Star(std::move(child))
                            : Nre::Nest(std::move(child)));
        break;
      }
      default:
        *error = Corrupt("unknown NRE op kind");
        return false;
    }
  }
  if (stack.size() != 1) {
    *error = Corrupt("unbalanced NRE encoding");
    return false;
  }
  *out = std::move(stack.back());
  return true;
}

// --- chased scenarios ------------------------------------------------------

void EncodeChased(const ChasedScenario& chased, WireWriter* out) {
  out->PutU8(chased.failed ? 1 : 0);
  out->PutBytes(chased.failure_reason);
  out->PutU64(chased.stats.triggers);
  out->PutU64(chased.stats.edges_added);
  out->PutU64(chased.stats.nulls_created);
  out->PutU64(chased.egd_merges);
  out->PutU64(chased.base_nulls);
  out->PutU64(chased.null_labels.size());
  for (const std::string& label : chased.null_labels) out->PutBytes(label);
  const GraphPattern& pattern = chased.pattern;
  out->PutU64(pattern.num_nodes());
  for (Value v : pattern.nodes()) out->PutU64(v.raw());
  out->PutU64(pattern.num_edges());
  for (const PatternEdge& edge : pattern.edges()) {
    out->PutU64(edge.src.raw());
    EncodeNre(*edge.nre, out);
    out->PutU64(edge.dst.raw());
  }
}

/// Returns the scenario mutable: the RELI pass attaches the reliance
/// graph after the CHSE pass built the entry.
std::shared_ptr<ChasedScenario> DecodeChased(WireReader* in, Status* error) {
  auto chased = std::make_shared<ChasedScenario>();
  uint8_t failed;
  std::string_view reason;
  if (!in->ReadU8(&failed) || !in->ReadBytes(&reason)) {
    *error = Corrupt("truncated chased-scenario header");
    return nullptr;
  }
  if (failed > 1) {
    *error = Corrupt("chased-scenario failed flag not boolean");
    return nullptr;
  }
  chased->failed = failed != 0;
  chased->failure_reason = std::string(reason);
  uint64_t triggers, edges_added, nulls_created, merges, base_nulls,
      num_labels;
  if (!in->ReadU64(&triggers) || !in->ReadU64(&edges_added) ||
      !in->ReadU64(&nulls_created) || !in->ReadU64(&merges) ||
      !in->ReadU64(&base_nulls) || !in->ReadU64(&num_labels)) {
    *error = Corrupt("truncated chased-scenario counters");
    return nullptr;
  }
  chased->stats.triggers = static_cast<size_t>(triggers);
  chased->stats.edges_added = static_cast<size_t>(edges_added);
  chased->stats.nulls_created = static_cast<size_t>(nulls_created);
  chased->egd_merges = static_cast<size_t>(merges);
  // Null ids are 32-bit: the arena (base + every label) must fit, or the
  // replayed nulls could not be addressed.
  if (base_nulls > 0xffffffffull ||
      num_labels > 0x100000000ull - base_nulls) {
    *error = Corrupt("chased-scenario null arena out of range");
    return nullptr;
  }
  chased->base_nulls = static_cast<size_t>(base_nulls);
  for (uint64_t i = 0; i < num_labels; ++i) {
    std::string_view label;
    if (!in->ReadBytes(&label)) {
      *error = Corrupt("truncated null label");
      return nullptr;
    }
    chased->null_labels.emplace_back(label);
  }
  const uint64_t null_bound = base_nulls + num_labels;
  auto valid_node = [&](uint64_t raw) {
    if (!ValidValueRaw(raw)) return false;
    Value v = Value::FromRaw(raw);
    // Every null the pattern mentions must be resolvable against the
    // arena a replay reconstructs (pre-existing nulls sit below base).
    return v.is_constant() || v.id() < null_bound;
  };
  uint64_t num_nodes;
  if (!in->ReadU64(&num_nodes)) {
    *error = Corrupt("truncated chased-pattern node count");
    return nullptr;
  }
  for (uint64_t i = 0; i < num_nodes; ++i) {
    uint64_t raw;
    if (!in->ReadU64(&raw)) {
      *error = Corrupt("truncated chased-pattern node");
      return nullptr;
    }
    if (!valid_node(raw)) {
      *error = Corrupt("chased-pattern node out of range");
      return nullptr;
    }
    Value v = Value::FromRaw(raw);
    if (chased->pattern.HasNode(v)) {
      *error = Corrupt("duplicate chased-pattern node");
      return nullptr;
    }
    chased->pattern.AddNode(v);
  }
  uint64_t num_edges;
  if (!in->ReadU64(&num_edges)) {
    *error = Corrupt("truncated chased-pattern edge count");
    return nullptr;
  }
  for (uint64_t i = 0; i < num_edges; ++i) {
    uint64_t src_raw;
    if (!in->ReadU64(&src_raw)) {
      *error = Corrupt("truncated chased-pattern edge");
      return nullptr;
    }
    NrePtr nre;
    if (!DecodeNre(in, &nre, error)) return nullptr;
    uint64_t dst_raw;
    if (!in->ReadU64(&dst_raw)) {
      *error = Corrupt("truncated chased-pattern edge");
      return nullptr;
    }
    if (!valid_node(src_raw) || !valid_node(dst_raw)) {
      *error = Corrupt("chased-pattern edge endpoint out of range");
      return nullptr;
    }
    Value src = Value::FromRaw(src_raw);
    Value dst = Value::FromRaw(dst_raw);
    // Endpoints must come from the node list (AddEdge would otherwise
    // invent them, breaking the decode → encode identity), and edges must
    // be unique (AddEdge would silently dedup, same problem).
    if (!chased->pattern.HasNode(src) || !chased->pattern.HasNode(dst)) {
      *error = Corrupt("chased-pattern edge endpoint not in node list");
      return nullptr;
    }
    const size_t before = chased->pattern.num_edges();
    chased->pattern.AddEdge(src, std::move(nre), dst);
    if (chased->pattern.num_edges() != before + 1) {
      *error = Corrupt("duplicate chased-pattern edge");
      return nullptr;
    }
  }
  return chased;
}

// --- reliance graphs -------------------------------------------------------

void EncodeSymbolList(const std::vector<SymbolId>& list, WireWriter* out) {
  out->PutU64(list.size());
  for (SymbolId s : list) out->PutU32(s);
}

/// The RELI payload per entry: the persisted RelianceGraph fields in node
/// order — flags and symbol lists, then the adjacency rows. The derived
/// strata are NOT stored; DecodeReliance recomputes them (DeriveStrata),
/// mirroring how CAUT re-derives reversed automaton transitions.
void EncodeReliance(const RelianceGraph& graph, WireWriter* out) {
  out->PutU64(graph.num_st_tgds);
  out->PutU64(graph.num_egds);
  for (const RelianceNode& node : graph.nodes) {
    out->PutU8(node.nullable_body_atom ? 1 : 0);
    out->PutU8(node.dead ? 1 : 0);
    EncodeSymbolList(node.body_symbols, out);
    EncodeSymbolList(node.definite_head_symbols, out);
  }
  for (const std::vector<uint32_t>& row : graph.out) {
    out->PutU64(row.size());
    for (uint32_t target : row) out->PutU32(target);
  }
}

/// Reads one u64-counted list of u32s that the format requires to be
/// strictly increasing (sorted, duplicate-free — the invariant both the
/// two-pointer intersections and decode → encode identity rely on) with
/// every entry below `exclusive_bound`.
bool DecodeSortedU32s(WireReader* in, uint64_t exclusive_bound,
                      std::vector<uint32_t>* out, Status* error) {
  uint64_t count;
  if (!in->ReadU64(&count)) {
    *error = Corrupt("truncated reliance list");
    return false;
  }
  uint32_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t v;
    if (!in->ReadU32(&v)) {
      *error = Corrupt("truncated reliance list");
      return false;
    }
    if (v >= exclusive_bound) {
      *error = Corrupt("reliance list entry out of range");
      return false;
    }
    if (i > 0 && v <= prev) {
      *error = Corrupt("reliance list not strictly increasing");
      return false;
    }
    prev = v;
    out->push_back(v);
  }
  return true;
}

RelianceGraphPtr DecodeReliance(WireReader* in, Status* error) {
  uint64_t num_st, num_egds;
  if (!in->ReadU64(&num_st) || !in->ReadU64(&num_egds)) {
    *error = Corrupt("truncated reliance header");
    return nullptr;
  }
  // Node ids travel as u32 (adjacency targets, scc indices), so the rule
  // count must fit.
  if (num_st > 0xffffffffull || num_egds > 0xffffffffull - num_st) {
    *error = Corrupt("reliance rule count out of range");
    return nullptr;
  }
  auto graph = std::make_shared<RelianceGraph>();
  graph->num_st_tgds = static_cast<size_t>(num_st);
  graph->num_egds = static_cast<size_t>(num_egds);
  const uint64_t num_nodes = num_st + num_egds;
  constexpr uint64_t kNoBound = 0x100000000ull;  // any u32 symbol id
  for (uint64_t i = 0; i < num_nodes; ++i) {
    RelianceNode node;
    uint8_t nullable, dead;
    if (!in->ReadU8(&nullable) || !in->ReadU8(&dead)) {
      *error = Corrupt("truncated reliance node");
      return nullptr;
    }
    if (nullable > 1 || dead > 1) {
      *error = Corrupt("reliance node flag not boolean");
      return nullptr;
    }
    node.nullable_body_atom = nullable != 0;
    node.dead = dead != 0;
    if (!DecodeSortedU32s(in, kNoBound, &node.body_symbols, error) ||
        !DecodeSortedU32s(in, kNoBound, &node.definite_head_symbols,
                          error)) {
      return nullptr;
    }
    graph->nodes.push_back(std::move(node));
  }
  for (uint64_t i = 0; i < num_nodes; ++i) {
    std::vector<uint32_t> row;
    if (!DecodeSortedU32s(in, num_nodes, &row, error)) return nullptr;
    graph->out.push_back(std::move(row));
  }
  // scc_of / strata / stratum_level are a pure function of the persisted
  // fields — recomputed, never trusted from the file.
  graph->DeriveStrata();
  return graph;
}

// --- string table ----------------------------------------------------------

/// Resolves a section's u32 string reference against the decoded table.
bool ResolveKey(uint32_t ref, const std::vector<std::string>& table,
                std::string* out, Status* error) {
  if (ref >= table.size()) {
    *error = Corrupt("string reference out of range");
    return false;
  }
  *out = table[ref];
  return true;
}

}  // namespace

std::string EncodeSnapshot(const WarmState& state) {
  // Span hooks (ISSUE 6): snapshot encode/decode are the dominant costs
  // of a warm start / checkpoint; they get their own trace attribution.
  GDX_TRACE_SPAN("snapshot.encode", "persist");
  // Every memo key goes through one persisted StringInterner: sections
  // store u32 ids, the STRT section stores the table. Ids are assigned in
  // encode-encounter order — deterministic, and stable under decode →
  // re-encode because decoding preserves entry order.
  StringInterner keys;

  WireWriter nrem;
  nrem.PutU32(static_cast<uint32_t>(state.nre.size()));
  for (const auto& [key, relation] : state.nre) {
    nrem.PutU32(keys.Intern(key));
    nrem.PutU64(relation.size());
    for (const NodePair& pair : relation) {
      nrem.PutU64(pair.first.raw());
      nrem.PutU64(pair.second.raw());
    }
  }

  WireWriter ansm;
  ansm.PutU32(static_cast<uint32_t>(state.answers.size()));
  for (const auto& [key, entries] : state.answers) {
    ansm.PutU32(keys.Intern(key));
    ansm.PutU32(static_cast<uint32_t>(entries.size()));
    for (const WarmState::AnswerEntry& entry : entries) {
      EncodeGraph(entry.graph, &ansm);
      ansm.PutU64(entry.answers.size());
      for (const std::vector<Value>& row : entry.answers) {
        ansm.PutU32(static_cast<uint32_t>(row.size()));
        for (Value v : row) ansm.PutU64(v.raw());
      }
    }
  }

  WireWriter caut;
  caut.PutU32(static_cast<uint32_t>(state.compiled.size()));
  for (const auto& [key, automaton] : state.compiled) {
    caut.PutU32(keys.Intern(key));
    EncodeAutomaton(*automaton, &caut);
  }

  WireWriter chse;
  chse.PutU32(static_cast<uint32_t>(state.chased.size()));
  for (const auto& [key, chased] : state.chased) {
    chse.PutU32(keys.Intern(key));
    EncodeChased(*chased, &chse);
  }

  // RELI (ISSUE 9) — the reliance analyses of the chased artifacts above,
  // referencing the same interned keys. Artifacts without one (restored
  // from pre-RELI snapshots) are simply absent here, so the section count
  // can be smaller than CHSE's; decode → encode stays the identity
  // because decoding only attaches what this section lists.
  WireWriter reli;
  uint32_t num_reliance = 0;
  for (const auto& [key, chased] : state.chased) {
    if (chased->reliance != nullptr) ++num_reliance;
  }
  reli.PutU32(num_reliance);
  for (const auto& [key, chased] : state.chased) {
    if (chased->reliance == nullptr) continue;
    reli.PutU32(keys.Intern(key));
    EncodeReliance(*chased->reliance, &reli);
  }

  WireWriter strt;
  strt.PutU32(static_cast<uint32_t>(keys.size()));
  for (uint32_t id = 0; id < keys.size(); ++id) {
    strt.PutBytes(keys.NameOf(id));
  }

  struct Section {
    uint32_t id;
    const std::string* payload;
  };
  const Section sections[] = {{kSecStrings, &strt.bytes()},
                              {kSecNreMemo, &nrem.bytes()},
                              {kSecAnswerMemo, &ansm.bytes()},
                              {kSecAutomata, &caut.bytes()},
                              {kSecChased, &chse.bytes()},
                              {kSecReliance, &reli.bytes()}};
  const size_t num_sections = sizeof(sections) / sizeof(sections[0]);

  WireWriter table;
  uint64_t offset = kHeaderBytes + num_sections * kSectionEntryBytes;
  for (const Section& section : sections) {
    table.PutU32(section.id);
    table.PutU64(offset);
    table.PutU64(section.payload->size());
    table.PutU64(Fnv1a64(*section.payload));
    offset += section.payload->size();
  }

  WireWriter out;
  out.PutRaw(std::string_view(kSnapshotMagic, sizeof(kSnapshotMagic)));
  out.PutU32(kFormatVersion);
  out.PutU32(static_cast<uint32_t>(num_sections));
  out.PutU64(Fnv1a64(table.bytes()));
  out.PutRaw(table.bytes());
  for (const Section& section : sections) out.PutRaw(*section.payload);
  return out.TakeBytes();
}

Result<WarmState> DecodeSnapshot(std::string_view bytes) {
  GDX_TRACE_SPAN("snapshot.decode", "persist");
  WireReader header(bytes);
  std::string_view magic;
  if (!header.ReadRaw(sizeof(kSnapshotMagic), &magic)) {
    return Corrupt("shorter than the magic");
  }
  if (magic != std::string_view(kSnapshotMagic, sizeof(kSnapshotMagic))) {
    return Corrupt("bad magic (not a gdx snapshot)");
  }
  uint32_t version, num_sections;
  uint64_t table_checksum;
  if (!header.ReadU32(&version) || !header.ReadU32(&num_sections) ||
      !header.ReadU64(&table_checksum)) {
    return Corrupt("truncated header");
  }
  if (version != kFormatVersion) {
    return Corrupt("format version " + std::to_string(version) +
                   " unsupported (this build reads version " +
                   std::to_string(kFormatVersion) + ")");
  }
  std::string_view table_bytes;
  if (!header.ReadRaw(num_sections * kSectionEntryBytes, &table_bytes)) {
    return Corrupt("truncated section table");
  }
  if (Fnv1a64(table_bytes) != table_checksum) {
    return Corrupt("section table checksum mismatch");
  }

  // Section table: verify bounds and checksums of every section up front
  // (unknown ids included), remember the payloads of the known ones.
  std::string_view strings_payload, nre_payload, answer_payload,
      automata_payload, chased_payload, reliance_payload;
  bool have_strings = false, have_nre = false, have_answers = false,
       have_automata = false, have_chased = false, have_reliance = false;
  WireReader table_reader(table_bytes);
  for (uint32_t i = 0; i < num_sections; ++i) {
    uint32_t id;
    uint64_t offset, length, checksum;
    if (!table_reader.ReadU32(&id) || !table_reader.ReadU64(&offset) ||
        !table_reader.ReadU64(&length) || !table_reader.ReadU64(&checksum)) {
      return Corrupt("truncated section table");
    }
    if (offset > bytes.size() || length > bytes.size() - offset) {
      return Corrupt("section extends past end of file");
    }
    std::string_view payload = bytes.substr(offset, length);
    if (Fnv1a64(payload) != checksum) {
      return Corrupt("section checksum mismatch");
    }
    auto claim = [&](std::string_view* slot, bool* have) -> bool {
      if (*have) return false;
      *slot = payload;
      *have = true;
      return true;
    };
    bool fresh = true;
    if (id == kSecStrings) fresh = claim(&strings_payload, &have_strings);
    else if (id == kSecNreMemo) fresh = claim(&nre_payload, &have_nre);
    else if (id == kSecAnswerMemo) fresh = claim(&answer_payload, &have_answers);
    else if (id == kSecAutomata) fresh = claim(&automata_payload, &have_automata);
    else if (id == kSecChased) fresh = claim(&chased_payload, &have_chased);
    else if (id == kSecReliance)
      fresh = claim(&reliance_payload, &have_reliance);
    // else: unknown section — checksummed above, otherwise skipped
    // (the forward-compatibility policy of docs/FORMAT.md).
    if (!fresh) return Corrupt("duplicate section");
  }

  // STRT — the persisted key table the other sections reference.
  std::vector<std::string> table;
  if (have_strings) {
    WireReader in(strings_payload);
    uint32_t count;
    if (!in.ReadU32(&count)) return Corrupt("truncated string table");
    for (uint32_t i = 0; i < count; ++i) {
      std::string_view s;
      if (!in.ReadBytes(&s)) return Corrupt("truncated string table entry");
      table.emplace_back(s);
    }
    if (!in.AtEnd()) return Corrupt("trailing bytes in string table");
  }

  WarmState state;
  Status error = Status::Ok();

  // NREM — memoized ⟦r⟧_G relations.
  if (have_nre) {
    WireReader in(nre_payload);
    uint32_t count;
    if (!in.ReadU32(&count)) return Corrupt("truncated NRE memo");
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t key_ref;
      uint64_t num_pairs;
      if (!in.ReadU32(&key_ref) || !in.ReadU64(&num_pairs)) {
        return Corrupt("truncated NRE memo entry");
      }
      std::string key;
      if (!ResolveKey(key_ref, table, &key, &error)) return error;
      BinaryRelation relation;
      for (uint64_t p = 0; p < num_pairs; ++p) {
        uint64_t src, dst;
        if (!in.ReadU64(&src) || !in.ReadU64(&dst)) {
          return Corrupt("truncated NRE relation");
        }
        if (!ValidValueRaw(src) || !ValidValueRaw(dst)) {
          return Corrupt("NRE relation value out of range");
        }
        relation.emplace_back(Value::FromRaw(src), Value::FromRaw(dst));
      }
      // The BinaryRelation contract: sorted by raw encoding, no
      // duplicates. Entries violating it would poison downstream
      // comparisons, so they are rejected, not repaired.
      if (!std::is_sorted(relation.begin(), relation.end()) ||
          std::adjacent_find(relation.begin(), relation.end()) !=
              relation.end()) {
        return Corrupt("NRE relation not in canonical order");
      }
      state.nre.emplace_back(std::move(key), std::move(relation));
    }
    if (!in.AtEnd()) return Corrupt("trailing bytes in NRE memo");
  }

  // ANSM — constant answer sets with their verification graphs.
  if (have_answers) {
    WireReader in(answer_payload);
    uint32_t count;
    if (!in.ReadU32(&count)) return Corrupt("truncated answer memo");
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t key_ref, num_entries;
      if (!in.ReadU32(&key_ref) || !in.ReadU32(&num_entries)) {
        return Corrupt("truncated answer memo entry");
      }
      std::string key;
      if (!ResolveKey(key_ref, table, &key, &error)) return error;
      std::vector<WarmState::AnswerEntry> entries;
      for (uint32_t e = 0; e < num_entries; ++e) {
        WarmState::AnswerEntry entry;
        if (!DecodeGraph(&in, &entry.graph, &error)) return error;
        uint64_t num_rows;
        if (!in.ReadU64(&num_rows)) return Corrupt("truncated answer rows");
        for (uint64_t r = 0; r < num_rows; ++r) {
          uint32_t arity;
          if (!in.ReadU32(&arity)) return Corrupt("truncated answer row");
          std::vector<Value> row;
          for (uint32_t c = 0; c < arity; ++c) {
            uint64_t raw;
            if (!in.ReadU64(&raw)) return Corrupt("truncated answer value");
            if (!ValidValueRaw(raw)) {
              return Corrupt("answer value out of range");
            }
            row.push_back(Value::FromRaw(raw));
          }
          entry.answers.push_back(std::move(row));
        }
        entries.push_back(std::move(entry));
      }
      state.answers.emplace_back(std::move(key), std::move(entries));
    }
    if (!in.AtEnd()) return Corrupt("trailing bytes in answer memo");
  }

  // CAUT — compiled automata, validated through CompiledNre::FromParts.
  if (have_automata) {
    WireReader in(automata_payload);
    uint32_t count;
    if (!in.ReadU32(&count)) return Corrupt("truncated automaton memo");
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t key_ref;
      if (!in.ReadU32(&key_ref)) {
        return Corrupt("truncated automaton memo entry");
      }
      std::string key;
      if (!ResolveKey(key_ref, table, &key, &error)) return error;
      CompiledNrePtr automaton = DecodeAutomaton(&in, 0, &error);
      if (automaton == nullptr) return error;
      state.compiled.emplace_back(std::move(key), std::move(automaton));
    }
    if (!in.AtEnd()) return Corrupt("trailing bytes in automaton memo");
  }

  // CHSE — chased scenarios (§5 universal representatives), an additive
  // section: absent in pre-ISSUE-5 snapshots, which decode to an empty
  // chased memo.
  // Decoded mutable so the RELI pass below can attach reliance graphs;
  // published into the (const-element) WarmState afterwards.
  std::vector<std::pair<std::string, std::shared_ptr<ChasedScenario>>>
      chased_entries;
  if (have_chased) {
    WireReader in(chased_payload);
    uint32_t count;
    if (!in.ReadU32(&count)) return Corrupt("truncated chased memo");
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t key_ref;
      if (!in.ReadU32(&key_ref)) {
        return Corrupt("truncated chased memo entry");
      }
      std::string key;
      if (!ResolveKey(key_ref, table, &key, &error)) return error;
      std::shared_ptr<ChasedScenario> chased = DecodeChased(&in, &error);
      if (chased == nullptr) return error;
      chased_entries.emplace_back(std::move(key), std::move(chased));
    }
    if (!in.AtEnd()) return Corrupt("trailing bytes in chased memo");
  }

  // RELI (ISSUE 9) — reliance analyses keyed like (and attached to) the
  // CHSE entries. Additive: absent in pre-ISSUE-9 snapshots, whose chased
  // artifacts then restore with a null reliance (harmless — the analysis
  // only matters while compiling). A RELI entry that matches no chased
  // entry, or a second one for the same artifact, is structural corruption.
  if (have_reliance) {
    WireReader in(reliance_payload);
    uint32_t count;
    if (!in.ReadU32(&count)) return Corrupt("truncated reliance memo");
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t key_ref;
      if (!in.ReadU32(&key_ref)) {
        return Corrupt("truncated reliance memo entry");
      }
      std::string key;
      if (!ResolveKey(key_ref, table, &key, &error)) return error;
      std::shared_ptr<ChasedScenario> target;
      for (auto& [chased_key, chased] : chased_entries) {
        if (chased_key == key) {
          target = chased;
          break;
        }
      }
      if (target == nullptr) {
        return Corrupt("reliance entry matches no chased scenario");
      }
      if (target->reliance != nullptr) {
        return Corrupt("duplicate reliance entry");
      }
      RelianceGraphPtr graph = DecodeReliance(&in, &error);
      if (graph == nullptr) return error;
      target->reliance = std::move(graph);
    }
    if (!in.AtEnd()) return Corrupt("trailing bytes in reliance memo");
  }

  for (auto& [key, chased] : chased_entries) {
    state.chased.emplace_back(std::move(key), std::move(chased));
  }

  return state;
}

Status WriteSnapshotFile(const std::string& path, const WarmState& state) {
  GDX_TRACE_SPAN("snapshot.write_file", "persist");
  std::string bytes = EncodeSnapshot(state);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::Internal("short write: " + path);
  return Status::Ok();
}

Result<WarmState> ReadSnapshotFile(const std::string& path) {
  GDX_TRACE_SPAN("snapshot.read_file", "persist");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open snapshot: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in && !in.eof()) return Status::Internal("read failed: " + path);
  return DecodeSnapshot(buffer.str());
}

}  // namespace gdx
