#ifndef GDX_PERSIST_SNAPSHOT_H_
#define GDX_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "chase/chase_compiler.h"
#include "common/status.h"
#include "graph/graph.h"
#include "graph/nre_compile.h"
#include "graph/nre_eval.h"

namespace gdx {

/// Warm-start persistence (ISSUE 4 tentpole): the codec of the versioned,
/// length-prefixed binary snapshot that carries an EngineCache's warm
/// state — NRE memo, null-blind answer memo, compiled-automaton memo
/// (automata included), since ISSUE 5 the chased-scenario memo (§5
/// universal representatives, patterns and null arenas included), and
/// since ISSUE 9 the reliance analyses of those artifacts (the additive
/// RELI companion section) — across process boundaries. docs/FORMAT.md is the normative byte-level
/// specification; this header is its implementation anchor (CI greps
/// kFormatVersion out of this file and fails when the spec drifts).
///
/// Safety contract: DecodeSnapshot fully validates its input — magic,
/// version, section-table bounds, per-section FNV-1a checksums, string-
/// table references, value encodings, relation ordering, and automaton
/// invariants (via CompiledNre::FromParts) — before anything reaches a
/// cache. A truncated, bit-flipped, or otherwise corrupted file yields a
/// descriptive non-OK Status and NO partial state, never UB: decoding is
/// transactional.

/// First bytes of every snapshot file: "GDXSNAP" + NUL.
inline constexpr char kSnapshotMagic[8] = {'G', 'D', 'X', 'S',
                                           'N', 'A', 'P', '\0'};

/// Snapshot format version. Readers accept exactly this version; any
/// layout change that alters the meaning of existing bytes must bump it.
/// Additive changes ride in new sections instead (unknown sections are
/// checksum-verified, then skipped — see docs/FORMAT.md §Compatibility).
inline constexpr uint32_t kFormatVersion = 1;

/// Engine warm state in plain-data form — the codec's in-memory interface,
/// decoupled from EngineCache's internal containers. Each memo lists
/// (key, payload) entries ordered least- to most-recently used, so a
/// restore reproduces the saving cache's LRU order. Keys are the exact
/// memo key byte strings (EngineCache::NreKey / AnswerKey /
/// NreRawSignature); in the file they are stored once in the snapshot's
/// string table and referenced by id.
struct WarmState {
  struct AnswerEntry {
    Graph graph;  // the verification graph retained by the answer memo
    std::vector<std::vector<Value>> answers;
  };

  std::vector<std::pair<std::string, BinaryRelation>> nre;
  std::vector<std::pair<std::string, std::vector<AnswerEntry>>> answers;
  std::vector<std::pair<std::string, CompiledNrePtr>> compiled;
  /// Chased-scenario memo (ISSUE 5): §5 universal representatives keyed
  /// by ChaseCompiler::Key, carried in the additive CHSE section.
  std::vector<std::pair<std::string, ChasedScenarioPtr>> chased;
};

/// Serializes warm state into snapshot bytes. Deterministic: equal states
/// encode to identical bytes (and decode → encode is the identity on any
/// valid snapshot), so byte comparison is a valid round-trip check.
std::string EncodeSnapshot(const WarmState& state);

/// Parses and fully validates snapshot bytes. Returns the decoded warm
/// state, or a descriptive error — in which case nothing was produced.
Result<WarmState> DecodeSnapshot(std::string_view bytes);

/// File conveniences over Encode/DecodeSnapshot.
Status WriteSnapshotFile(const std::string& path, const WarmState& state);
Result<WarmState> ReadSnapshotFile(const std::string& path);

}  // namespace gdx

#endif  // GDX_PERSIST_SNAPSHOT_H_
