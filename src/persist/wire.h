#ifndef GDX_PERSIST_WIRE_H_
#define GDX_PERSIST_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace gdx {

/// Byte-level primitives of the snapshot wire format (docs/FORMAT.md).
/// All multi-byte integers are little-endian, independent of host
/// endianness. The writer appends to a std::string; the reader is a
/// bounds-checked cursor over a string_view — every Read* returns false
/// instead of reading past the end, so truncated or length-corrupted
/// files surface as clean decode errors, never as out-of-bounds reads.

/// FNV-1a 64-bit hash — the per-section checksum of the snapshot format.
/// Chosen for being trivially reimplementable from the spec (docs/FORMAT.md
/// is normative): no table, no dependency, byte-order independent.
inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Append-only encoder. The buffer is plain bytes in a std::string so the
/// section payloads can be checksummed and concatenated without copies.
class WireWriter {
 public:
  void PutU8(uint8_t x) { out_.push_back(static_cast<char>(x)); }

  void PutU32(uint32_t x) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>(x & 0xff));
      x >>= 8;
    }
  }

  void PutU64(uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>(x & 0xff));
      x >>= 8;
    }
  }

  /// Length-prefixed byte string (u64 length + raw bytes).
  void PutBytes(std::string_view bytes) {
    PutU64(bytes.size());
    out_.append(bytes.data(), bytes.size());
  }

  /// Raw bytes, no length prefix (for fixed-size fields like the magic).
  void PutRaw(std::string_view bytes) {
    out_.append(bytes.data(), bytes.size());
  }

  const std::string& bytes() const { return out_; }
  std::string TakeBytes() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

/// Bounds-checked decoder over a byte buffer. On any failed read the
/// cursor is left unspecified and the caller must abandon the decode; no
/// Read* ever touches memory outside the buffer.
class WireReader {
 public:
  explicit WireReader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU8(uint8_t* out) {
    if (remaining() < 1) return false;
    *out = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }

  bool ReadU32(uint32_t* out) {
    if (remaining() < 4) return false;
    uint32_t x = 0;
    for (int i = 0; i < 4; ++i) {
      x |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = x;
    return true;
  }

  bool ReadU64(uint64_t* out) {
    if (remaining() < 8) return false;
    uint64_t x = 0;
    for (int i = 0; i < 8; ++i) {
      x |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = x;
    return true;
  }

  /// Length-prefixed byte string; the returned view aliases the buffer.
  bool ReadBytes(std::string_view* out) {
    uint64_t len;
    if (!ReadU64(&len)) return false;
    if (len > remaining()) return false;
    *out = bytes_.substr(pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return true;
  }

  /// Exactly `len` raw bytes (no length prefix); aliases the buffer.
  bool ReadRaw(size_t len, std::string_view* out) {
    if (len > remaining()) return false;
    *out = bytes_.substr(pos_, len);
    pos_ += len;
    return true;
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace gdx

#endif  // GDX_PERSIST_WIRE_H_
