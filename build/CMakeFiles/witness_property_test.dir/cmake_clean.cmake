file(REMOVE_RECURSE
  "CMakeFiles/witness_property_test.dir/tests/witness_property_test.cpp.o"
  "CMakeFiles/witness_property_test.dir/tests/witness_property_test.cpp.o.d"
  "witness_property_test"
  "witness_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witness_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
