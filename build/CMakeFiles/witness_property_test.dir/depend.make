# Empty dependencies file for witness_property_test.
# This may be replaced when dependencies are built.
