# Empty dependencies file for rdf_sameas.
# This may be replaced when dependencies are built.
