file(REMOVE_RECURSE
  "CMakeFiles/rdf_sameas.dir/examples/rdf_sameas.cpp.o"
  "CMakeFiles/rdf_sameas.dir/examples/rdf_sameas.cpp.o.d"
  "rdf_sameas"
  "rdf_sameas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdf_sameas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
