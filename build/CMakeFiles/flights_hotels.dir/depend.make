# Empty dependencies file for flights_hotels.
# This may be replaced when dependencies are built.
