file(REMOVE_RECURSE
  "CMakeFiles/flights_hotels.dir/examples/flights_hotels.cpp.o"
  "CMakeFiles/flights_hotels.dir/examples/flights_hotels.cpp.o.d"
  "flights_hotels"
  "flights_hotels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flights_hotels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
