# Empty dependencies file for cnre_test.
# This may be replaced when dependencies are built.
