file(REMOVE_RECURSE
  "CMakeFiles/cnre_test.dir/tests/cnre_test.cpp.o"
  "CMakeFiles/cnre_test.dir/tests/cnre_test.cpp.o.d"
  "cnre_test"
  "cnre_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnre_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
