# Empty dependencies file for nre_simplify_test.
# This may be replaced when dependencies are built.
