file(REMOVE_RECURSE
  "CMakeFiles/nre_simplify_test.dir/tests/nre_simplify_test.cpp.o"
  "CMakeFiles/nre_simplify_test.dir/tests/nre_simplify_test.cpp.o.d"
  "nre_simplify_test"
  "nre_simplify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nre_simplify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
