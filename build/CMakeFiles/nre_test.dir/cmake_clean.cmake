file(REMOVE_RECURSE
  "CMakeFiles/nre_test.dir/tests/nre_test.cpp.o"
  "CMakeFiles/nre_test.dir/tests/nre_test.cpp.o.d"
  "nre_test"
  "nre_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nre_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
