# Empty dependencies file for nre_test.
# This may be replaced when dependencies are built.
