# Empty dependencies file for nre_eval_test.
# This may be replaced when dependencies are built.
