file(REMOVE_RECURSE
  "CMakeFiles/nre_eval_test.dir/tests/nre_eval_test.cpp.o"
  "CMakeFiles/nre_eval_test.dir/tests/nre_eval_test.cpp.o.d"
  "nre_eval_test"
  "nre_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nre_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
