file(REMOVE_RECURSE
  "CMakeFiles/gdx_cli.dir/examples/gdx_cli.cpp.o"
  "CMakeFiles/gdx_cli.dir/examples/gdx_cli.cpp.o.d"
  "gdx_cli"
  "gdx_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdx_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
