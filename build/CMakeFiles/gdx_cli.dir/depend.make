# Empty dependencies file for gdx_cli.
# This may be replaced when dependencies are built.
