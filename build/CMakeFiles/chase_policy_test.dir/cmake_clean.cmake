file(REMOVE_RECURSE
  "CMakeFiles/chase_policy_test.dir/tests/chase_policy_test.cpp.o"
  "CMakeFiles/chase_policy_test.dir/tests/chase_policy_test.cpp.o.d"
  "chase_policy_test"
  "chase_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
