# Empty dependencies file for chase_policy_test.
# This may be replaced when dependencies are built.
