file(REMOVE_RECURSE
  "libgdx.a"
)
