
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chase/egd_chase.cc" "CMakeFiles/gdx.dir/src/chase/egd_chase.cc.o" "gcc" "CMakeFiles/gdx.dir/src/chase/egd_chase.cc.o.d"
  "/root/repo/src/chase/pattern_chase.cc" "CMakeFiles/gdx.dir/src/chase/pattern_chase.cc.o" "gcc" "CMakeFiles/gdx.dir/src/chase/pattern_chase.cc.o.d"
  "/root/repo/src/chase/pattern_saturation.cc" "CMakeFiles/gdx.dir/src/chase/pattern_saturation.cc.o" "gcc" "CMakeFiles/gdx.dir/src/chase/pattern_saturation.cc.o.d"
  "/root/repo/src/chase/relational_lowering.cc" "CMakeFiles/gdx.dir/src/chase/relational_lowering.cc.o" "gcc" "CMakeFiles/gdx.dir/src/chase/relational_lowering.cc.o.d"
  "/root/repo/src/chase/sameas_completion.cc" "CMakeFiles/gdx.dir/src/chase/sameas_completion.cc.o" "gcc" "CMakeFiles/gdx.dir/src/chase/sameas_completion.cc.o.d"
  "/root/repo/src/chase/target_tgd_chase.cc" "CMakeFiles/gdx.dir/src/chase/target_tgd_chase.cc.o" "gcc" "CMakeFiles/gdx.dir/src/chase/target_tgd_chase.cc.o.d"
  "/root/repo/src/common/strings.cc" "CMakeFiles/gdx.dir/src/common/strings.cc.o" "gcc" "CMakeFiles/gdx.dir/src/common/strings.cc.o.d"
  "/root/repo/src/engine/batch_executor.cc" "CMakeFiles/gdx.dir/src/engine/batch_executor.cc.o" "gcc" "CMakeFiles/gdx.dir/src/engine/batch_executor.cc.o.d"
  "/root/repo/src/engine/cache.cc" "CMakeFiles/gdx.dir/src/engine/cache.cc.o" "gcc" "CMakeFiles/gdx.dir/src/engine/cache.cc.o.d"
  "/root/repo/src/engine/exchange_engine.cc" "CMakeFiles/gdx.dir/src/engine/exchange_engine.cc.o" "gcc" "CMakeFiles/gdx.dir/src/engine/exchange_engine.cc.o.d"
  "/root/repo/src/exchange/parser.cc" "CMakeFiles/gdx.dir/src/exchange/parser.cc.o" "gcc" "CMakeFiles/gdx.dir/src/exchange/parser.cc.o.d"
  "/root/repo/src/exchange/solution_check.cc" "CMakeFiles/gdx.dir/src/exchange/solution_check.cc.o" "gcc" "CMakeFiles/gdx.dir/src/exchange/solution_check.cc.o.d"
  "/root/repo/src/exchange/universal_pair.cc" "CMakeFiles/gdx.dir/src/exchange/universal_pair.cc.o" "gcc" "CMakeFiles/gdx.dir/src/exchange/universal_pair.cc.o.d"
  "/root/repo/src/graph/cnre.cc" "CMakeFiles/gdx.dir/src/graph/cnre.cc.o" "gcc" "CMakeFiles/gdx.dir/src/graph/cnre.cc.o.d"
  "/root/repo/src/graph/dot_export.cc" "CMakeFiles/gdx.dir/src/graph/dot_export.cc.o" "gcc" "CMakeFiles/gdx.dir/src/graph/dot_export.cc.o.d"
  "/root/repo/src/graph/graph.cc" "CMakeFiles/gdx.dir/src/graph/graph.cc.o" "gcc" "CMakeFiles/gdx.dir/src/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "CMakeFiles/gdx.dir/src/graph/graph_io.cc.o" "gcc" "CMakeFiles/gdx.dir/src/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/isomorphism.cc" "CMakeFiles/gdx.dir/src/graph/isomorphism.cc.o" "gcc" "CMakeFiles/gdx.dir/src/graph/isomorphism.cc.o.d"
  "/root/repo/src/graph/nre.cc" "CMakeFiles/gdx.dir/src/graph/nre.cc.o" "gcc" "CMakeFiles/gdx.dir/src/graph/nre.cc.o.d"
  "/root/repo/src/graph/nre_eval.cc" "CMakeFiles/gdx.dir/src/graph/nre_eval.cc.o" "gcc" "CMakeFiles/gdx.dir/src/graph/nre_eval.cc.o.d"
  "/root/repo/src/graph/nre_parser.cc" "CMakeFiles/gdx.dir/src/graph/nre_parser.cc.o" "gcc" "CMakeFiles/gdx.dir/src/graph/nre_parser.cc.o.d"
  "/root/repo/src/graph/nre_simplify.cc" "CMakeFiles/gdx.dir/src/graph/nre_simplify.cc.o" "gcc" "CMakeFiles/gdx.dir/src/graph/nre_simplify.cc.o.d"
  "/root/repo/src/graph/query_parser.cc" "CMakeFiles/gdx.dir/src/graph/query_parser.cc.o" "gcc" "CMakeFiles/gdx.dir/src/graph/query_parser.cc.o.d"
  "/root/repo/src/pattern/homomorphism.cc" "CMakeFiles/gdx.dir/src/pattern/homomorphism.cc.o" "gcc" "CMakeFiles/gdx.dir/src/pattern/homomorphism.cc.o.d"
  "/root/repo/src/pattern/pattern.cc" "CMakeFiles/gdx.dir/src/pattern/pattern.cc.o" "gcc" "CMakeFiles/gdx.dir/src/pattern/pattern.cc.o.d"
  "/root/repo/src/pattern/witness.cc" "CMakeFiles/gdx.dir/src/pattern/witness.cc.o" "gcc" "CMakeFiles/gdx.dir/src/pattern/witness.cc.o.d"
  "/root/repo/src/reduction/sat_encoding.cc" "CMakeFiles/gdx.dir/src/reduction/sat_encoding.cc.o" "gcc" "CMakeFiles/gdx.dir/src/reduction/sat_encoding.cc.o.d"
  "/root/repo/src/relational/chase.cc" "CMakeFiles/gdx.dir/src/relational/chase.cc.o" "gcc" "CMakeFiles/gdx.dir/src/relational/chase.cc.o.d"
  "/root/repo/src/relational/eval.cc" "CMakeFiles/gdx.dir/src/relational/eval.cc.o" "gcc" "CMakeFiles/gdx.dir/src/relational/eval.cc.o.d"
  "/root/repo/src/sat/cnf.cc" "CMakeFiles/gdx.dir/src/sat/cnf.cc.o" "gcc" "CMakeFiles/gdx.dir/src/sat/cnf.cc.o.d"
  "/root/repo/src/sat/dpll.cc" "CMakeFiles/gdx.dir/src/sat/dpll.cc.o" "gcc" "CMakeFiles/gdx.dir/src/sat/dpll.cc.o.d"
  "/root/repo/src/sat/gen.cc" "CMakeFiles/gdx.dir/src/sat/gen.cc.o" "gcc" "CMakeFiles/gdx.dir/src/sat/gen.cc.o.d"
  "/root/repo/src/solver/certain.cc" "CMakeFiles/gdx.dir/src/solver/certain.cc.o" "gcc" "CMakeFiles/gdx.dir/src/solver/certain.cc.o.d"
  "/root/repo/src/solver/core_minimizer.cc" "CMakeFiles/gdx.dir/src/solver/core_minimizer.cc.o" "gcc" "CMakeFiles/gdx.dir/src/solver/core_minimizer.cc.o.d"
  "/root/repo/src/solver/existence.cc" "CMakeFiles/gdx.dir/src/solver/existence.cc.o" "gcc" "CMakeFiles/gdx.dir/src/solver/existence.cc.o.d"
  "/root/repo/src/solver/flat_encoding.cc" "CMakeFiles/gdx.dir/src/solver/flat_encoding.cc.o" "gcc" "CMakeFiles/gdx.dir/src/solver/flat_encoding.cc.o.d"
  "/root/repo/src/solver/sameas_engine.cc" "CMakeFiles/gdx.dir/src/solver/sameas_engine.cc.o" "gcc" "CMakeFiles/gdx.dir/src/solver/sameas_engine.cc.o.d"
  "/root/repo/src/workload/flights.cc" "CMakeFiles/gdx.dir/src/workload/flights.cc.o" "gcc" "CMakeFiles/gdx.dir/src/workload/flights.cc.o.d"
  "/root/repo/src/workload/paper_graphs.cc" "CMakeFiles/gdx.dir/src/workload/paper_graphs.cc.o" "gcc" "CMakeFiles/gdx.dir/src/workload/paper_graphs.cc.o.d"
  "/root/repo/src/workload/random_graph.cc" "CMakeFiles/gdx.dir/src/workload/random_graph.cc.o" "gcc" "CMakeFiles/gdx.dir/src/workload/random_graph.cc.o.d"
  "/root/repo/src/workload/scenario_parser.cc" "CMakeFiles/gdx.dir/src/workload/scenario_parser.cc.o" "gcc" "CMakeFiles/gdx.dir/src/workload/scenario_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
