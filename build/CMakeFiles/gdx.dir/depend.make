# Empty dependencies file for gdx.
# This may be replaced when dependencies are built.
