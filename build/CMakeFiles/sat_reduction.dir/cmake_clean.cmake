file(REMOVE_RECURSE
  "CMakeFiles/sat_reduction.dir/examples/sat_reduction.cpp.o"
  "CMakeFiles/sat_reduction.dir/examples/sat_reduction.cpp.o.d"
  "sat_reduction"
  "sat_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
