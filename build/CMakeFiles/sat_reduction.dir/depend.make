# Empty dependencies file for sat_reduction.
# This may be replaced when dependencies are built.
