file(REMOVE_RECURSE
  "CMakeFiles/universal_pair_test.dir/tests/universal_pair_test.cpp.o"
  "CMakeFiles/universal_pair_test.dir/tests/universal_pair_test.cpp.o.d"
  "universal_pair_test"
  "universal_pair_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/universal_pair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
