# Empty dependencies file for universal_pair_test.
# This may be replaced when dependencies are built.
