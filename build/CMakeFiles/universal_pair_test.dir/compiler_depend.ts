# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for universal_pair_test.
